// Per-node soft-state key/value store.
//
// Records carry the DHT key they were routed with (so the network can
// migrate them on membership change) and an absolute expiry tick
// (soft-state deletion, §3.3 of the paper: entries age out unless
// refreshed).

#ifndef DHS_DHT_STORE_H_
#define DHS_DHT_STORE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "common/status.h"

namespace dhs {

/// Expiry value meaning "never expires".
inline constexpr uint64_t kNoExpiry = std::numeric_limits<uint64_t>::max();

/// One stored record.
struct StoreRecord {
  uint64_t dht_key = 0;          // routing key the record was stored under
  std::string value;             // opaque application payload
  uint64_t expires_at = kNoExpiry;  // absolute virtual-clock tick
};

/// The storage hosted by a single overlay node. Keys are application-level
/// byte strings (the DHS layer packs metric/vector/bit into them); the map
/// is ordered so prefix scans are O(log n + matches).
class NodeStore {
 public:
  /// Inserts or refreshes a record. Refreshing updates value, dht_key and
  /// expiry (the paper's timestamp-reset on update).
  void Put(uint64_t dht_key, const std::string& app_key, std::string value,
           uint64_t expires_at);

  /// Returns the live record for `app_key`, or nullptr. Records whose
  /// expiry is <= now are treated as absent (and lazily erased).
  const StoreRecord* Get(const std::string& app_key, uint64_t now);

  /// Removes a record; returns true if present.
  bool Erase(const std::string& app_key);

  /// Drops every record with expires_at <= now. Returns number dropped.
  size_t ExpireUntil(uint64_t now);

  /// Invokes fn(app_key, record) for each live record whose key starts
  /// with `prefix`. `fn` must not mutate the store.
  template <typename Fn>
  void ForEachWithPrefix(const std::string& prefix, uint64_t now,
                         Fn&& fn) const {
    for (auto it = records_.lower_bound(prefix);
         it != records_.end() && it->first.compare(0, prefix.size(), prefix,
                                                   0, prefix.size()) == 0;
         ++it) {
      if (it->second.expires_at > now) fn(it->first, it->second);
    }
  }

  /// Moves every record with dht_key in the ring interval selected by
  /// `predicate` into `dest` (membership-change migration).
  template <typename Pred>
  void MigrateIf(Pred&& predicate, NodeStore& dest) {
    for (auto it = records_.begin(); it != records_.end();) {
      if (predicate(it->second.dht_key)) {
        dest.records_[it->first] = std::move(it->second);
        it = records_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Moves everything into `dest` (graceful leave).
  void MigrateAll(NodeStore& dest);

  void Clear() { records_.clear(); }
  size_t NumRecords() const { return records_.size(); }

  /// Total payload bytes held (keys + values), the paper's storage-load
  /// metric.
  size_t SizeBytes() const;

 private:
  std::map<std::string, StoreRecord> records_;
};

}  // namespace dhs

#endif  // DHS_DHT_STORE_H_
