// Per-node soft-state key/value store.
//
// Records carry the DHT key they were routed with (so the network can
// migrate them on membership change) and an absolute expiry tick
// (soft-state deletion, §3.3 of the paper: entries age out unless
// refreshed).
//
// Keys are StoreKey values: either a packed DHS coordinate
// (metric, bit, vector) held inline with no heap allocation, or an
// arbitrary raw byte string (the escape hatch for non-DHS users such as
// the baselines). Expiry is tracked by a lazy min-heap per store so
// that advancing the virtual clock touches only stores whose earliest
// record is actually due, instead of rescanning every record.

#ifndef DHS_DHT_STORE_H_
#define DHS_DHT_STORE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dhs {

/// Expiry value meaning "never expires".
inline constexpr uint64_t kNoExpiry = std::numeric_limits<uint64_t>::max();

/// Storage key: packed DHS coordinate or raw bytes.
///
/// Packed keys compare as (metric, bit, vector) integer tuples, which is
/// exactly the byte order of the historical string encoding
/// 'D' | metric (8B BE) | bit (1B) | vector (2B BE) — range scans
/// therefore see records in the same order as the string-keyed store
/// did. All packed keys sort before all raw keys; the two sections never
/// interleave.
class StoreKey {
 public:
  /// Byte length of the encoded DHS key; packed keys count as this in
  /// the storage-load metric (identical to the old string keys).
  static constexpr size_t kDhsEncodedBytes = 12;

  StoreKey() = default;  // empty raw key
  // Implicit by design: raw string app-keys keep working unchanged.
  StoreKey(std::string raw) : kind_(kRaw), raw_(std::move(raw)) {}
  StoreKey(const char* raw) : kind_(kRaw), raw_(raw) {}

  static StoreKey Dhs(uint64_t metric_id, int bit, int vector_id) {
    StoreKey key;
    key.kind_ = kDhs;
    key.metric_ = metric_id;
    key.bit_ = static_cast<uint8_t>(bit);
    key.vector_ = static_cast<uint16_t>(vector_id);
    key.raw_.clear();
    return key;
  }

  bool is_dhs() const { return kind_ == kDhs; }
  uint64_t metric_id() const { return metric_; }
  int bit() const { return bit_; }
  int vector_id() const { return vector_; }
  const std::string& raw() const { return raw_; }

  /// Bytes this key contributes to payload and storage accounting.
  size_t SizeBytes() const {
    return kind_ == kDhs ? kDhsEncodedBytes : raw_.size();
  }

  /// The historical byte encoding (diagnostics / cross-impl dumps).
  std::string ToBytes() const;

  /// Inverse of ToBytes(): a buffer of exactly kDhsEncodedBytes starting
  /// with 'D' decodes to the packed DHS key it encodes; any other byte
  /// string becomes a raw key holding the bytes verbatim. Total on the
  /// wire-format side: ToBytes(FromBytes(b)) == b for every b. (A raw
  /// key whose bytes happen to spell a canonical DHS encoding decodes to
  /// the packed key — the two were indistinguishable on the wire by
  /// design.)
  static StoreKey FromBytes(const std::string& bytes);

  friend bool operator==(const StoreKey& a, const StoreKey& b) {
    if (a.kind_ != b.kind_) return false;
    if (a.kind_ == kDhs) {
      return a.metric_ == b.metric_ && a.bit_ == b.bit_ &&
             a.vector_ == b.vector_;
    }
    return a.raw_ == b.raw_;
  }
  friend bool operator!=(const StoreKey& a, const StoreKey& b) {
    return !(a == b);
  }
  friend bool operator<(const StoreKey& a, const StoreKey& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;  // DHS section first
    if (a.kind_ == kDhs) {
      return std::tie(a.metric_, a.bit_, a.vector_) <
             std::tie(b.metric_, b.bit_, b.vector_);
    }
    return a.raw_ < b.raw_;
  }

 private:
  enum Kind : uint8_t { kDhs = 0, kRaw = 1 };

  Kind kind_ = kRaw;
  uint8_t bit_ = 0;
  uint16_t vector_ = 0;
  uint64_t metric_ = 0;
  std::string raw_;
};

/// One stored record.
struct StoreRecord {
  uint64_t dht_key = 0;          // routing key the record was stored under
  std::string value;             // opaque application payload
  uint64_t expires_at = kNoExpiry;  // absolute virtual-clock tick
};

/// The storage hosted by a single overlay node. The map is ordered so
/// (metric, bit) scans are O(log n + matches); a lazy expiry heap makes
/// "anything due?" an O(1) question.
class NodeStore {
 public:
  using RecordMap = std::map<StoreKey, StoreRecord>;

  /// Inserts or refreshes a record. Refreshing updates value, dht_key and
  /// expiry (the paper's timestamp-reset on update).
  void Put(uint64_t dht_key, StoreKey app_key, std::string value,
           uint64_t expires_at);

  /// Returns the live record for `app_key`, or nullptr. Records whose
  /// expiry is <= now are treated as absent (and lazily erased).
  const StoreRecord* Get(const StoreKey& app_key, uint64_t now);

  /// Removes a record; returns true if present.
  bool Erase(const StoreKey& app_key);

  /// Drops every record with expires_at <= now. Returns number dropped.
  /// Cost is O(due log heap), not O(records).
  size_t ExpireUntil(uint64_t now);

  /// Lower bound on the earliest finite expiry held (kNoExpiry if none).
  /// May be stale-low after refreshes/erases — callers use it as a cheap
  /// "nothing can be due yet" filter, never as an exact value.
  uint64_t MinExpiry() const {
    return expiry_heap_.empty() ? kNoExpiry : expiry_heap_.top().expires_at;
  }

  /// Points this store at a network-level watermark: every Put of a
  /// finite expiry lowers *watermark so the network can skip clock
  /// advances that cannot expire anything. Optional (tests use unbound
  /// stores).
  void BindExpiryWatermark(uint64_t* watermark) { watermark_ = watermark; }

  /// Invokes fn(key, record) for each live record of (metric_id, bit),
  /// in ascending vector order. `fn` must not mutate the store.
  template <typename Fn>
  void ForEachDhs(uint64_t metric_id, int bit, uint64_t now,
                  Fn&& fn) const {
    auto it = records_.lower_bound(StoreKey::Dhs(metric_id, bit, 0));
    for (; it != records_.end(); ++it) {
      const StoreKey& key = it->first;
      if (!key.is_dhs() || key.metric_id() != metric_id ||
          key.bit() != bit) {
        break;
      }
      if (it->second.expires_at > now) fn(key, it->second);
    }
  }

  /// Invokes fn(key, record) for each live record of `metric_id` across
  /// all bits, in (bit, vector) order.
  template <typename Fn>
  void ForEachDhsMetric(uint64_t metric_id, uint64_t now, Fn&& fn) const {
    auto it = records_.lower_bound(StoreKey::Dhs(metric_id, 0, 0));
    for (; it != records_.end(); ++it) {
      const StoreKey& key = it->first;
      if (!key.is_dhs() || key.metric_id() != metric_id) break;
      if (it->second.expires_at > now) fn(key, it->second);
    }
  }

  /// Invokes fn(raw_key, record) for each live raw-keyed record whose
  /// bytes start with `prefix`. Packed DHS records live in their own
  /// section and are not visited; use ForEachDhs* for those.
  template <typename Fn>
  void ForEachWithPrefix(const std::string& prefix, uint64_t now,
                         Fn&& fn) const {
    auto it = records_.lower_bound(StoreKey(prefix));
    for (; it != records_.end(); ++it) {
      const std::string& key = it->first.raw();
      if (key.compare(0, prefix.size(), prefix) != 0) break;
      if (it->second.expires_at > now) fn(key, it->second);
    }
  }

  /// Invokes fn(key, record) for every live record (both sections).
  template <typename Fn>
  void ForEach(uint64_t now, Fn&& fn) const {
    for (const auto& [key, rec] : records_) {
      if (rec.expires_at > now) fn(key, rec);
    }
  }

  /// Moves every record with dht_key selected by `predicate` into `dest`
  /// (membership-change migration). Map nodes are spliced over — no
  /// key/value reallocation.
  template <typename Pred>
  void MigrateIf(Pred&& predicate, NodeStore& dest) {
    for (auto it = records_.begin(); it != records_.end();) {
      if (predicate(it->second.dht_key)) {
        auto next = std::next(it);
        size_bytes_ -= it->first.SizeBytes() + it->second.value.size();
        dest.Adopt(records_.extract(it));
        it = next;
      } else {
        ++it;
      }
    }
  }

  /// Moves everything into `dest` (graceful leave) via std::map::merge —
  /// no per-record reallocation. Incoming records replace resident ones
  /// on key collision (last-writer-wins, as migration always did).
  void MigrateAll(NodeStore& dest);

  /// Moves out every record still live at `now` and empties the store
  /// (graceful-leave re-homing; the caller re-inserts each map node into
  /// the new responsible store via Adopt()).
  RecordMap TakeRecords(uint64_t now);

  /// Adopts one extracted map node, replacing any resident record under
  /// the same key.
  void Adopt(RecordMap::node_type&& node);

  void Clear();
  size_t NumRecords() const { return records_.size(); }

  /// Exhaustively re-derives this store's redundant state and compares it
  /// against the maintained copies: byte accounting (SizeBytes() equals
  /// the recomputed key+value total) and expiry tracking (every record
  /// with a finite deadline has a heap entry at or below that deadline,
  /// so MinExpiry() is a sound lower bound). O(records + heap); intended
  /// for audits and tests, not the hot path. Returns OK or Internal with
  /// a description of the first violation.
  [[nodiscard]] Status AuditFull(uint64_t now) const;

  /// The network watermark this store pushes expiries into (nullptr when
  /// unbound). Exposed for the network-level audit.
  const uint64_t* bound_watermark() const { return watermark_; }

  /// Total payload bytes held (keys + values), the paper's storage-load
  /// metric. O(1): maintained incrementally.
  size_t SizeBytes() const { return size_bytes_; }

 private:
  struct ExpiryEntry {
    uint64_t expires_at = 0;
    StoreKey key;
  };
  struct LaterExpiry {
    bool operator()(const ExpiryEntry& a, const ExpiryEntry& b) const {
      return a.expires_at > b.expires_at;
    }
  };

  /// Records a (possibly new) finite expiry for `key` in the heap and
  /// pushes the bound watermark down.
  void NoteExpiry(const StoreKey& key, uint64_t expires_at);

  /// Erases `it`, maintaining the byte accounting. Stale heap entries
  /// are left behind and skipped when popped.
  RecordMap::iterator EraseIt(RecordMap::iterator it);

  RecordMap records_;
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>, LaterExpiry>
      expiry_heap_;
  size_t size_bytes_ = 0;
  uint64_t* watermark_ = nullptr;
};

}  // namespace dhs

#endif  // DHS_DHT_STORE_H_
