#include "dht/shard.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "dht/wire.h"
#include "obs/trace.h"

namespace dhs {

namespace {
enum : uint8_t { kPhaseIssue = 0, kPhaseRoute = 1, kPhaseWalk = 2 };

// Decodes an op's wire frame into its routed fields: the engine
// executes what is on the wire, not what the caller typed next to it.
// Non-routed knobs (interval, replication, queries, lim, response
// sizing) have no wire representation and stay as given.
Status ApplyFrame(ShardOp& op) {
  auto parsed = ParseFrame(op.frame);
  if (!parsed.ok()) return parsed.status();
  switch (parsed->type) {
    case FrameType::kPut: {
      if (op.kind != ShardOp::kPut) {
        return Status::InvalidArgument("kPut frame on a non-put op");
      }
      auto put = DecodePut(op.frame);
      if (!put.ok()) return put.status();
      if (put->absolute_expiry) {
        return Status::InvalidArgument(
            "sharded puts take relative TTLs (the clock is frozen for "
            "the whole batch, so absolute expiries cannot be anchored)");
      }
      op.key = put->dst_key;
      op.payload_bytes = PutPayloadBytes(put->keys.size());
      op.put_keys = std::move(put->keys);
      op.ttl_ticks = put->expiry;
      return Status::OK();
    }
    case FrameType::kProbeOpen: {
      if (op.kind != ShardOp::kProbe) {
        return Status::InvalidArgument("kProbeOpen frame on a non-probe op");
      }
      auto probe = DecodeProbeOpen(op.frame);
      if (!probe.ok()) return probe.status();
      op.key = probe->target_key;
      op.payload_bytes = kProbeOpenPayloadBytes;
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(
          "only kPut and kProbeOpen frames route through the sharded "
          "engine");
  }
}
}  // namespace

/// Trace event recorded while a token executes; replayed on the
/// coordinator in operation order after the walk completes.
struct ShardedNetwork::OpEvent {
  enum Kind : uint8_t { kHop, kFault, kRetry };
  Kind kind;
  FaultType fault = FaultType::kNone;  // kFault
  const char* what = nullptr;          // kRetry: "lookup" / "direct_hop"
  int attempt = 0;                     // kRetry
  uint64_t a = 0;                      // kHop/kFault: from
  uint64_t b = 0;                      // kHop: to; kFault: target

  static OpEvent Hop(uint64_t from, uint64_t to) {
    OpEvent e;
    e.kind = kHop;
    e.a = from;
    e.b = to;
    return e;
  }
  static OpEvent Fault(FaultType fault, uint64_t from, uint64_t target) {
    OpEvent e;
    e.kind = kFault;
    e.fault = fault;
    e.a = from;
    e.b = target;
    return e;
  }
  static OpEvent Retry(const char* what, int attempt) {
    OpEvent e;
    e.kind = kRetry;
    e.what = what;
    e.attempt = attempt;
    return e;
  }
};

/// One operation's routing/walk cursor. Exactly one token exists per
/// op, so the token holder owns the op's outcome and scratch state.
struct ShardedNetwork::Token {
  uint32_t op = 0;
  uint32_t cur_idx = 0;    // ring index the token sits at
  uint32_t walk_from = 0;  // ring index direct hops originate from
  uint8_t phase = kPhaseIssue;
  int attempt = 0;         // lookup attempts already faulted
  int steps = 0;           // routing iterations completed (== hops)
  uint32_t fault_pos = 0;  // next draw of this op's fault stream
  uint32_t walk_pos = 0;   // next candidate index (kPhaseWalk)
};

struct ShardedNetwork::OpState {
  bool done = false;
  bool reached = false;           // lookup delivered and routed
  std::vector<OpEvent> events;
  std::vector<uint32_t> walk;     // candidate ring indices, walk order
  uint32_t effect_seq = 0;
};

/// A deferred store write: op `op` stores its put_keys at ring index
/// `node_idx` (served = 1 for replica copies, whose direct hop also
/// terminates there). Committed after the walk in (op, seq) order, so
/// the final store state is shard-count-invariant.
struct ShardedNetwork::Effect {
  uint32_t op = 0;
  uint32_t seq = 0;
  uint32_t node_idx = 0;
  uint8_t served = 0;
};

struct ShardedNetwork::BatchCtx {
  const std::vector<ShardOp>* ops = nullptr;
  std::vector<ShardOpOutcome>* out = nullptr;
  std::vector<OpState>* st = nullptr;
  uint64_t ordinal_base = 0;
  bool faults = false;
  FaultConfig fcfg;
  // outbox[src][dst]: tokens worker src emitted toward shard dst this
  // round, in emission order — the (round, source_shard, seq) total
  // order the coordinator merges at the barrier.
  std::vector<std::vector<std::vector<Token>>> outbox;
  std::vector<std::vector<Effect>> effects;  // per source worker
};

ShardedNetwork::ShardedNetwork(DhtNetwork* network, int shards)
    : net_(network), pool_(shards) {
  CHECK(network != nullptr) << "sharded engine needs a network";
  Resync();
}

void ShardedNetwork::Resync() {
  net_->SetShardPlan(pool_.shards());
  dirty_ = false;
}

Status ShardedNetwork::JoinNode(uint64_t node_id) {
  Status s = net_->AddNode(node_id);
  if (s.ok()) dirty_ = true;
  return s;
}

Status ShardedNetwork::LeaveNode(uint64_t node_id) {
  Status s = net_->RemoveNode(node_id);
  if (s.ok()) dirty_ = true;
  return s;
}

Status ShardedNetwork::CrashNode(uint64_t node_id) {
  Status s = net_->FailNode(node_id);
  if (s.ok()) dirty_ = true;
  return s;
}

void ShardedNetwork::AdvanceClock(uint64_t ticks) {
  if (dirty_) Resync();
  net_->now_ += ticks;
  pool_.RunRound([this](int shard) {
    if (net_->shard_expiry_[static_cast<size_t>(shard)] <= net_->now_) {
      net_->ExpireShard(shard);
    }
  });
}

void ShardedNetwork::FinishLookupFailure(BatchCtx& ctx, Token& tok,
                                         FaultType last) {
  ShardOpOutcome& o = (*ctx.out)[tok.op];
  o.status = last == FaultType::kTimeout
                 ? Status::DeadlineExceeded(
                       "message timed out (fault injection)")
                 : Status::Unavailable("message dropped (fault injection)");
  (*ctx.st)[tok.op].done = true;
}

void ShardedNetwork::VisitProbeNode(BatchCtx& ctx, const Token& tok,
                                    size_t node_idx) {
  const ShardOp& op = (*ctx.ops)[tok.op];
  ShardOpOutcome& o = (*ctx.out)[tok.op];
  NodeLoad& load = net_->loads_[node_idx];
  const uint64_t node_id = net_->ring_[node_idx];
  const NodeStore& store = net_->nodes_.at(node_id);
  o.visited.push_back(node_id);
  std::vector<std::vector<int>> per_query;
  per_query.reserve(op.queries.size());
  for (const auto& [metric_id, bit] : op.queries) {
    load.probes += 1;
    std::vector<int> vectors;
    store.ForEachDhs(metric_id, bit, net_->now_,
                     [&vectors](const StoreKey& key, const StoreRecord&) {
                       vectors.push_back(key.vector_id());
                     });
    o.delta.bytes +=
        op.response_base_bytes + op.response_per_record_bytes * vectors.size();
    per_query.push_back(std::move(vectors));
  }
  o.found.push_back(std::move(per_query));
}

void ShardedNetwork::TerminalPut(BatchCtx& ctx, int shard, Token& tok) {
  const ShardOp& op = (*ctx.ops)[tok.op];
  ShardOpOutcome& o = (*ctx.out)[tok.op];
  OpState& s = (*ctx.st)[tok.op];
  const uint64_t key = net_->space_.Clamp(op.key);
  const size_t primary_idx = tok.cur_idx;
  const uint64_t primary = net_->ring_[primary_idx];

  // The primary write is durable once the lookup reached the
  // responsible node (sequential StoreTuple); its served count came
  // from the lookup terminal, so the effect carries only the store.
  ctx.effects[static_cast<size_t>(shard)].push_back(
      Effect{tok.op, s.effect_seq++, static_cast<uint32_t>(primary_idx), 0});
  o.replicas_written += 1;

  int extra_needed = op.replication - 1;
  if (extra_needed <= 0) return;
  const std::vector<uint64_t> replicas = net_->ReplicaCandidates(
      op.interval, key, primary, extra_needed + op.replica_slack);
  for (uint64_t replica : replicas) {
    bool reached = false;
    for (int attempt = 0;; ++attempt) {
      o.delta.messages += 1;
      o.direct_issued += 1;
      const FaultType f =
          ctx.faults ? FaultPlan::DecisionFor(
                           ctx.fcfg, OpFaultSeq(ctx.ordinal_base + tok.op,
                                                tok.fault_pos++))
                     : FaultType::kNone;
      if (f != FaultType::kNone && replica != primary) {
        s.events.push_back(OpEvent::Fault(f, primary, replica));
        if (attempt + 1 >= retry_attempts_) break;
        o.retries += 1;
        s.events.push_back(OpEvent::Retry("direct_hop", attempt + 1));
        continue;
      }
      reached = true;
      break;
    }
    if (!reached) {
      o.failed_candidates += 1;
      continue;
    }
    if (replica != primary) {
      o.delta.hops += 1;
      o.delta.bytes += op.payload_bytes;
    }
    ctx.effects[static_cast<size_t>(shard)].push_back(
        Effect{tok.op, s.effect_seq++,
               static_cast<uint32_t>(net_->RingIndexOf(replica)), 1});
    o.replicas_written += 1;
    if (--extra_needed == 0) break;
  }
}

void ShardedNetwork::StepToken(BatchCtx& ctx, int shard, Token tok) {
  const ShardOp& op = (*ctx.ops)[tok.op];
  ShardOpOutcome& o = (*ctx.out)[tok.op];
  OpState& s = (*ctx.st)[tok.op];
  const std::vector<uint64_t>& ring = net_->ring_;
  const uint64_t key = net_->space_.Clamp(op.key);

  if (tok.phase == kPhaseIssue) {
    // Lookup attempts. A fault hits the request as issued — one
    // message charged, no hops — and a self-delivered request (origin
    // already responsible) is downgraded to delivery, both exactly as
    // the sequential Lookup/InjectFault pair.
    const uint64_t origin = ring[tok.cur_idx];
    for (;;) {
      o.delta.messages += 1;
      o.lookups_issued += 1;
      const FaultType f =
          ctx.faults ? FaultPlan::DecisionFor(
                           ctx.fcfg, OpFaultSeq(ctx.ordinal_base + tok.op,
                                                tok.fault_pos++))
                     : FaultType::kNone;
      if (f != FaultType::kNone) {
        auto responsible = net_->ResponsibleNode(key);
        CHECK_OK(responsible) << "responsibility on a non-empty network";
        if (responsible.value() != origin) {
          s.events.push_back(OpEvent::Fault(f, origin, responsible.value()));
          if (tok.attempt + 1 >= retry_attempts_) {
            FinishLookupFailure(ctx, tok, f);
            return;
          }
          tok.attempt += 1;
          o.retries += 1;
          s.events.push_back(OpEvent::Retry("lookup", tok.attempt));
          continue;
        }
      }
      break;  // delivered
    }
    tok.phase = kPhaseRoute;
  }

  if (tok.phase == kPhaseRoute) {
    for (;;) {
      if (tok.steps > net_->config_.max_route_hops) {
        o.status = Status::Internal("routing did not converge (cycle?)");
        s.done = true;
        return;
      }
      const size_t cur = tok.cur_idx;
      const size_t next = net_->NextHopIndex(cur, ring[cur], key);
      if (next == cur) {
        // Terminal: the responsible node serves the request.
        net_->loads_[cur].served += 1;
        o.node = ring[cur];
        o.lookup_hops = tok.steps;
        s.reached = true;
        if (op.kind == ShardOp::kLookup) {
          s.done = true;
          return;
        }
        if (op.kind == ShardOp::kPut) {
          TerminalPut(ctx, shard, tok);
          s.done = true;
          return;
        }
        // kProbe: read the responsible node, then walk the overlay's
        // candidate holders in full (no done() early exit — the
        // observables cannot change, only the probe cost; see shard.h).
        VisitProbeNode(ctx, tok, cur);
        const std::vector<uint64_t> candidates =
            net_->ProbeCandidates(op.interval, key, ring[cur], op.lim - 1);
        s.walk.reserve(candidates.size());
        for (uint64_t candidate : candidates) {
          s.walk.push_back(
              static_cast<uint32_t>(net_->RingIndexOf(candidate)));
        }
        tok.phase = kPhaseWalk;
        tok.walk_from = static_cast<uint32_t>(cur);
        break;
      }
      s.events.push_back(OpEvent::Hop(ring[cur], ring[next]));
      net_->loads_[cur].routed += 1;
      tok.steps += 1;
      o.delta.hops += 1;
      o.delta.bytes += op.payload_bytes;
      tok.cur_idx = static_cast<uint32_t>(next);
      const int owner = net_->shard_plan_.ShardOf(ring[next]);
      if (owner != shard) {
        ctx.outbox[static_cast<size_t>(shard)][static_cast<size_t>(owner)]
            .push_back(tok);
        return;
      }
    }
  }

  // kPhaseWalk: each candidate is probed at its owning shard (the
  // direct-hop fault draws are pure, so any holder can draw them).
  while (tok.walk_pos < s.walk.size()) {
    const size_t next_idx = s.walk[tok.walk_pos];
    const uint64_t next_id = ring[next_idx];
    const int owner = net_->shard_plan_.ShardOf(next_id);
    if (owner != shard) {
      ctx.outbox[static_cast<size_t>(shard)][static_cast<size_t>(owner)]
          .push_back(tok);
      return;
    }
    tok.walk_pos += 1;
    const uint64_t from_id = ring[tok.walk_from];
    bool delivered = false;
    for (int attempt = 0;; ++attempt) {
      o.delta.messages += 1;
      o.direct_issued += 1;
      const FaultType f =
          ctx.faults ? FaultPlan::DecisionFor(
                           ctx.fcfg, OpFaultSeq(ctx.ordinal_base + tok.op,
                                                tok.fault_pos++))
                     : FaultType::kNone;
      if (f != FaultType::kNone && next_id != from_id) {
        s.events.push_back(OpEvent::Fault(f, from_id, next_id));
        if (attempt + 1 >= retry_attempts_) break;
        o.retries += 1;
        s.events.push_back(OpEvent::Retry("direct_hop", attempt + 1));
        continue;
      }
      delivered = true;
      break;
    }
    if (!delivered) {
      // Unreachable candidate: skip it and walk on from the last node
      // reached (sequential ProbeInterval).
      o.failed_candidates += 1;
      continue;
    }
    if (next_id != from_id) {
      o.delta.hops += 1;
      o.delta.bytes += op.payload_bytes;
      net_->loads_[next_idx].served += 1;
    }
    VisitProbeNode(ctx, tok, next_idx);
    tok.walk_from = static_cast<uint32_t>(next_idx);
  }
  s.done = true;
}

void ShardedNetwork::CommitEffects(BatchCtx& ctx) {
  const int shards = pool_.shards();
  size_t total = 0;
  for (const auto& v : ctx.effects) total += v.size();
  if (total == 0) return;
  std::vector<Effect> all;
  all.reserve(total);
  for (const auto& v : ctx.effects) {
    all.insert(all.end(), v.begin(), v.end());
  }
  // Canonical commit order: (op, seq) is unique per effect, so the
  // resulting store state cannot depend on the shard count.
  std::sort(all.begin(), all.end(), [](const Effect& x, const Effect& y) {
    return x.op != y.op ? x.op < y.op : x.seq < y.seq;
  });
  std::vector<std::vector<Effect>> per_shard(static_cast<size_t>(shards));
  for (const Effect& e : all) {
    per_shard[static_cast<size_t>(
                  net_->shard_plan_.ShardOf(net_->ring_[e.node_idx]))]
        .push_back(e);
  }
  pool_.RunRound([&](int shard) {
    for (const Effect& e : per_shard[static_cast<size_t>(shard)]) {
      const ShardOp& op = (*ctx.ops)[e.op];
      NodeLoad& load = net_->loads_[e.node_idx];
      load.served += e.served;
      load.stores += 1;
      NodeStore& store = net_->nodes_.at(net_->ring_[e.node_idx]);
      const uint64_t expires = op.ttl_ticks == kNoExpiry
                                   ? kNoExpiry
                                   : net_->now_ + op.ttl_ticks;
      for (const StoreKey& app_key : op.put_keys) {
        store.Put(net_->space_.Clamp(op.key), app_key, std::string(),
                  expires);
      }
    }
  });
}

void ShardedNetwork::ReplayObservability(BatchCtx& ctx) {
  Tracer* tracer = net_->tracer_;
  const bool tracing = tracer != nullptr && tracer->enabled();
  static const char* const kSpanNames[] = {"lookup", "put", "probe"};
  for (size_t i = 0; i < ctx.ops->size(); ++i) {
    const ShardOp& op = (*ctx.ops)[i];
    ShardOpOutcome& o = (*ctx.out)[i];
    OpState& s = (*ctx.st)[i];
    // One span per op, carrying the op's exact stats delta: the delta
    // is merged into the global counters while the span is open, so
    // the tracer's per-span deltas still sum to the global growth.
    ScopedSpan span(tracer, kSpanNames[op.kind]);
    if (span.active()) {
      span.Arg(TraceArg::U64("from", net_->space_.Clamp(op.origin)));
      span.Arg(TraceArg::U64("key", net_->space_.Clamp(op.key)));
      if (s.reached) span.Arg(TraceArg::U64("node", o.node));
    }
    if (net_->m_lookups_ != nullptr) {
      net_->m_lookups_->Increment(static_cast<uint64_t>(o.lookups_issued));
    }
    if (net_->m_direct_hops_ != nullptr) {
      net_->m_direct_hops_->Increment(
          static_cast<uint64_t>(o.direct_issued));
    }
    for (const OpEvent& e : s.events) {
      switch (e.kind) {
        case OpEvent::kHop:
          if (tracing) {
            tracer->Instant("hop", {TraceArg::U64("from", e.a),
                                    TraceArg::U64("to", e.b)});
          }
          break;
        case OpEvent::kFault:
          net_->fault_plan_.RecordApplied(e.fault);
          if (e.fault == FaultType::kDrop &&
              net_->m_fault_drops_ != nullptr) {
            net_->m_fault_drops_->Increment();
          }
          if (e.fault == FaultType::kTimeout &&
              net_->m_fault_timeouts_ != nullptr) {
            net_->m_fault_timeouts_->Increment();
          }
          if (tracing) {
            tracer->Instant("fault",
                            {TraceArg::Str("kind", FaultTypeName(e.fault)),
                             TraceArg::U64("from", e.a),
                             TraceArg::U64("target", e.b)});
          }
          break;
        case OpEvent::kRetry:
          if (tracing) {
            tracer->Instant("retry", {TraceArg::Str("what", e.what),
                                      TraceArg::I64("attempt", e.attempt)});
          }
          break;
      }
    }
    net_->stats_ += o.delta;
    if (s.reached && net_->m_lookup_hops_ != nullptr) {
      net_->m_lookup_hops_->Observe(o.lookup_hops);
    }
  }
}

StatusOr<std::vector<ShardOpOutcome>> ShardedNetwork::ExecuteBatch(
    const std::vector<ShardOp>& ops) {
  if (dirty_) Resync();
  const bool faults = net_->fault_plan_.active();
  if (faults && net_->fault_plan_.config().crash_probability > 0.0) {
    return Status::InvalidArgument(
        "sharded batches cannot inject crash faults (membership is "
        "frozen during a batch)");
  }
  std::vector<ShardOpOutcome> out(ops.size());
  if (ops.empty()) return out;

  const int shards = pool_.shards();
  std::vector<OpState> st(ops.size());

  // Framed ops (ShardOp::frame) are decoded up front on the
  // coordinator so every worker sees one representation; the copy is
  // only materialized when a frame is actually present. A frame that
  // fails to decode fails its op before any token is seeded.
  std::vector<ShardOp> decoded;
  bool any_frame = false;
  for (const ShardOp& op : ops) {
    if (!op.frame.empty()) {
      any_frame = true;
      break;
    }
  }
  if (any_frame) {
    decoded = ops;
    for (size_t i = 0; i < decoded.size(); ++i) {
      if (decoded[i].frame.empty()) continue;
      Status applied = ApplyFrame(decoded[i]);
      if (!applied.ok()) {
        out[i].status = applied;
        st[i].done = true;
      }
    }
  }
  const std::vector<ShardOp>& batch = any_frame ? decoded : ops;

  BatchCtx ctx;
  ctx.ops = &batch;
  ctx.out = &out;
  ctx.st = &st;
  ctx.ordinal_base = op_ordinal_;
  op_ordinal_ += ops.size();
  ctx.faults = faults;
  ctx.fcfg = net_->fault_plan_.config();
  ctx.outbox.assign(
      static_cast<size_t>(shards),
      std::vector<std::vector<Token>>(static_cast<size_t>(shards)));
  ctx.effects.assign(static_cast<size_t>(shards), {});

  // Seed one token per op at its origin's shard, in op order.
  std::vector<std::vector<Token>> inbox(static_cast<size_t>(shards));
  for (size_t i = 0; i < batch.size(); ++i) {
    if (st[i].done) continue;  // frame decode already failed this op
    const uint64_t origin = net_->space_.Clamp(batch[i].origin);
    auto it =
        std::lower_bound(net_->ring_.begin(), net_->ring_.end(), origin);
    if (it == net_->ring_.end() || *it != origin) {
      out[i].status =
          Status::InvalidArgument("lookup origin is not a live node");
      st[i].done = true;
      continue;
    }
    Token tok;
    tok.op = static_cast<uint32_t>(i);
    tok.cur_idx = static_cast<uint32_t>(it - net_->ring_.begin());
    inbox[static_cast<size_t>(net_->shard_plan_.ShardOf(origin))].push_back(
        tok);
  }

  // BSP rounds: each worker drains its own inbox; departing tokens are
  // redistributed at the barrier in (source_shard, emission_seq) order,
  // so the whole schedule is a pure function of the batch.
  for (;;) {
    pool_.RunRound([this, &ctx, &inbox](int shard) {
      auto& queue = inbox[static_cast<size_t>(shard)];
      for (Token& tok : queue) StepToken(ctx, shard, tok);
      queue.clear();
    });
    bool pending = false;
    for (int src = 0; src < shards; ++src) {
      for (int dst = 0; dst < shards; ++dst) {
        auto& emitted =
            ctx.outbox[static_cast<size_t>(src)][static_cast<size_t>(dst)];
        if (emitted.empty()) continue;
        pending = true;
        auto& queue = inbox[static_cast<size_t>(dst)];
        queue.insert(queue.end(), emitted.begin(), emitted.end());
        emitted.clear();
      }
    }
    if (!pending) break;
  }

  CommitEffects(ctx);
  ReplayObservability(ctx);
  return out;
}

}  // namespace dhs
