// L-bit circular identifier-space arithmetic for the Chord-like overlay.
//
// IDs live in [0, 2^L) for a configurable L <= 64 (the paper's evaluation
// uses L = 64), stored in uint64_t. All interval logic is ring-aware:
// an interval may wrap around zero.

#ifndef DHS_DHT_NODE_ID_H_
#define DHS_DHT_NODE_ID_H_

#include <cstdint>
#include <string>

namespace dhs {

/// One ID-space interval [lo, lo + size); size is a power of two and the
/// interval never wraps (lo + size <= 2^L, where == means the top of the
/// space). DHS bit positions map to such intervals; they are always
/// prefix-aligned blocks, which makes them meaningful under both ring
/// (Chord) and XOR (Kademlia) geometries.
struct IdInterval {
  uint64_t lo = 0;
  uint64_t size = 0;

  /// Inclusive-lo / exclusive-hi membership.
  bool Contains(uint64_t id) const { return id - lo < size; }
};

/// Value-type describing an L-bit circular ID space.
class IdSpace {
 public:
  /// `bits` in [8, 64].
  explicit IdSpace(int bits = 64);

  int bits() const { return bits_; }

  /// All-ones mask, i.e. 2^L - 1.
  uint64_t Mask() const { return mask_; }

  /// x reduced into the ID space (x mod 2^L).
  uint64_t Clamp(uint64_t x) const { return x & mask_; }

  /// Clockwise distance from a to b: (b - a) mod 2^L.
  uint64_t Distance(uint64_t a, uint64_t b) const {
    return (b - a) & mask_;
  }

  /// a + delta on the ring.
  uint64_t Add(uint64_t a, uint64_t delta) const {
    return (a + delta) & mask_;
  }

  /// True iff x lies in the half-open ring interval (a, b]. By Chord
  /// convention, node successor(k) is responsible for k when
  /// k in (predecessor, successor]. Inline: evaluated per routing hop.
  bool InIntervalExclIncl(uint64_t x, uint64_t a, uint64_t b) const {
    x &= mask_;
    a &= mask_;
    b &= mask_;
    if (a == b) return true;  // the whole ring (single-node case)
    // x in (a, b]  <=>  dist(a, x) <= dist(a, b) and x != a.
    return x != a && Distance(a, x) <= Distance(a, b);
  }

  /// True iff x lies in the open ring interval (a, b). Inline:
  /// evaluated per finger probe.
  bool InIntervalExclExcl(uint64_t x, uint64_t a, uint64_t b) const {
    x &= mask_;
    a &= mask_;
    b &= mask_;
    if (a == b) return x != a;  // whole ring minus the endpoint
    return x != a && x != b && Distance(a, x) < Distance(a, b);
  }

  /// Hex rendering, zero-padded to ceil(bits/4) digits.
  std::string ToString(uint64_t id) const;

 private:
  int bits_;
  uint64_t mask_;
};

}  // namespace dhs

#endif  // DHS_DHT_NODE_ID_H_
