// Seeded message-level fault injection for the overlay simulator.
//
// A FaultPlan decides, per routed message, whether the message is
// delivered or suffers one of three failure modes (§3.5's failure
// setting, extended from clean teardown to realistic message loss):
//
//   * kDrop    — the message vanishes; the operation fails Unavailable.
//   * kTimeout — the message times out in flight; the operation fails
//                DeadlineExceeded. Like a drop, no state changes.
//   * kCrash   — the *target* node crashes before answering: it is
//                removed from the network (records lost, as FailNode)
//                and the operation fails Unavailable.
//
// Decisions are a pure function of (seed, message sequence number) —
// DecisionFor() — so a run is exactly replayable: the differential
// model checker (tools/audit_sim.cc) recomputes every decision from the
// same FaultConfig and the observed sequence numbers and must agree
// with the network's behaviour. The plan can be paused (checker-side
// introspection probes must not consume fault decisions or sequence
// numbers).
//
// Faults only apply to messages that actually cross the network: a
// self-delivered message (origin already responsible, or a direct hop
// to self) cannot be lost, and a crash is downgraded to delivery when
// it would remove the last node.

#ifndef DHS_DHT_FAULT_H_
#define DHS_DHT_FAULT_H_

#include <cstdint>

#include "common/status.h"

namespace dhs {

/// Per-message fault outcome.
enum class FaultType : uint8_t {
  kNone = 0,
  kDrop,
  kTimeout,
  kCrash,
};

const char* FaultTypeName(FaultType type);

/// Fault probabilities and the replay seed. All probabilities are per
/// message; their sum must be <= 1.
struct FaultConfig {
  double drop_probability = 0.0;
  double timeout_probability = 0.0;
  double crash_probability = 0.0;
  uint64_t seed = 0;

  bool Any() const {
    return drop_probability > 0.0 || timeout_probability > 0.0 ||
           crash_probability > 0.0;
  }

  [[nodiscard]] Status Validate() const;
};

/// Counters over the decisions a plan has handed out.
struct FaultStats {
  uint64_t decisions = 0;  // messages that drew a decision (incl. kNone)
  uint64_t drops = 0;      // applied, after downgrades
  uint64_t timeouts = 0;
  uint64_t crashes = 0;

  uint64_t Applied() const { return drops + timeouts + crashes; }
};

/// Deterministic per-message fault schedule. Owned by DhtNetwork; the
/// network draws one decision per routed message and applies downgrades
/// (self-delivery, last-node crash) before recording the applied fault.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config) : config_(config) {}

  /// The decision for message number `seq` under `config` — pure, so
  /// external replayers (the model checker) can predict every draw.
  static FaultType DecisionFor(const FaultConfig& config, uint64_t seq);

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// Sequence number the next delivered-or-faulted message will draw.
  uint64_t seq() const { return seq_; }

  /// True when the plan can fault messages right now.
  bool active() const { return config_.Any() && !paused_; }

  /// While paused, messages are delivered without drawing a decision or
  /// advancing the sequence number (checker probes stay invisible).
  void set_paused(bool paused) { paused_ = paused; }
  bool paused() const { return paused_; }

  /// Draws the decision for the next message and advances the sequence.
  /// Must only be called when active().
  FaultType NextDecision();

  /// Records a fault the network actually applied (post-downgrade).
  void RecordApplied(FaultType type);

 private:
  FaultConfig config_;
  FaultStats stats_;
  uint64_t seq_ = 0;
  bool paused_ = false;
};

/// True for the transient, retry-worthy failure codes a FaultPlan
/// produces (drop/crash -> Unavailable, timeout -> DeadlineExceeded).
inline bool IsTransientFault(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded();
}

}  // namespace dhs

#endif  // DHS_DHT_FAULT_H_
