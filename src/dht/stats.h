// Cost accounting for the overlay simulation. The paper's efficiency
// metrics are protocol-level counts — routing hops, bytes carried across
// hops, nodes visited, per-node access/storage load — so the simulator
// tracks exactly these.

#ifndef DHS_DHT_STATS_H_
#define DHS_DHT_STATS_H_

#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace dhs {

/// Aggregate message-level costs. Byte accounting convention (matching the
/// paper): a payload of b bytes routed over h hops costs h * b bytes; DHT
/// protocol and TCP/IP headers are excluded, as in §5.2.
struct MessageStats {
  uint64_t messages = 0;  // logical operations (lookups, direct hops)
  uint64_t hops = 0;      // total inter-node hops
  uint64_t bytes = 0;     // total payload bytes carried over all hops

  void Clear() { *this = MessageStats{}; }

  MessageStats& operator+=(const MessageStats& o) {
    messages += o.messages;
    hops += o.hops;
    bytes += o.bytes;
    return *this;
  }

  /// Counter subtraction is only meaningful between two snapshots of
  /// the same monotonically growing counters (later minus earlier), so
  /// component-wise underflow is always a caller bug — catch it before
  /// it wraps to ~2^64 and poisons downstream deltas.
  MessageStats& operator-=(const MessageStats& o) {
    DCHECK_LE(o.messages, messages) << "MessageStats message underflow";
    DCHECK_LE(o.hops, hops) << "MessageStats hop underflow";
    DCHECK_LE(o.bytes, bytes) << "MessageStats byte underflow";
    messages -= o.messages;
    hops -= o.hops;
    bytes -= o.bytes;
    return *this;
  }
};

inline MessageStats operator-(MessageStats a, const MessageStats& b) {
  a -= b;
  return a;
}

/// Per-node load counters (constraint 3 of the paper: access and storage
/// load balancing).
struct NodeLoad {
  uint64_t routed = 0;   // messages forwarded through this node
  uint64_t served = 0;   // messages terminating at this node
  uint64_t stores = 0;   // store operations served
  uint64_t probes = 0;   // DHS probe requests served

  uint64_t TotalAccesses() const { return routed + served; }
};

}  // namespace dhs

#endif  // DHS_DHT_STATS_H_
