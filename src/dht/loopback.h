// Loopback socket transport: every DHS frame crosses a real AF_UNIX
// socket pair before it is served.
//
// The client half serializes each operation as a length-prefixed
// session record, writes it into the kernel socket, and the server half
// — the other end of the same pair, pumped on the same thread — reads
// it back, executes it through the shared serving logic (an inner
// SimTransport against the same DhtNetwork), and writes the response
// record. The DHS client code path is therefore exercised end-to-end
// over genuine network I/O while staying:
//
//   byte-identical — the server side issues the identical
//     Lookup/DirectHop/ServeFrame calls as the sim backend, so fault
//     draws, clock, stats and estimates match SimTransport exactly;
//   deterministic and single-threaded — no server thread (the repo's
//     concurrency rules keep raw threads out of src/dht/); the pump
//     interleaves nonblocking reads and writes, which also makes
//     frames larger than the socket buffer safe (a 512 KiB insert
//     group streams through in chunks).
//
// Session records ride their own LE framing (bit_util codecs, like the
// wire frames they carry):
//
//   request:   len 4 | op 1 (1=route 2=send 3=query) | from 8 | to 8 | frame
//   response:  len 4 | ok 1 | code 1 | msg_len 2 | msg | node 8 | hops 2 | frame
//
// where len counts the bytes after the length field itself.

#ifndef DHS_DHT_LOOPBACK_H_
#define DHS_DHT_LOOPBACK_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dht/network.h"
#include "dht/transport.h"

namespace dhs {

class LoopbackTransport final : public Transport {
 public:
  /// Opens the socket pair. CHECK-fails if the OS refuses (no graceful
  /// degradation: a loopback run that silently fell back to in-process
  /// calls would be lying about what it tested).
  explicit LoopbackTransport(DhtNetwork* network);
  ~LoopbackTransport() override;

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  const char* name() const override { return "loopback"; }
  StatusOr<Delivery> Route(uint64_t origin_node,
                           const std::string& frame) override;
  StatusOr<Delivery> Send(uint64_t from_node, uint64_t to_node,
                          const std::string& frame) override;
  StatusOr<std::string> Query(uint64_t node,
                              const std::string& frame) override;
  void set_frame_tap(FrameTap tap) override;

  /// Total session-record bytes moved through the kernel socket in each
  /// direction (diagnostics; the cost-model bytes live in MessageStats).
  uint64_t socket_bytes_sent() const { return socket_bytes_sent_; }
  uint64_t socket_bytes_received() const { return socket_bytes_received_; }

 private:
  // Runs one op end-to-end: write the request record, pump the server
  // side, read back the full response record.
  StatusOr<std::string> RoundTrip(uint8_t op, uint64_t from, uint64_t to,
                                  const std::string& frame);
  // Drains client->server bytes, executes any complete request, stages
  // and flushes the response. Returns true if any byte moved.
  bool ServerStep();
  // Executes one decoded request against the inner sim transport and
  // encodes the response record.
  std::string ServeRecord(const std::string& record);

  SimTransport sim_;
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::string server_in_;   // partial request bytes at the server
  std::string server_out_;  // response bytes not yet flushed to client
  uint64_t socket_bytes_sent_ = 0;
  uint64_t socket_bytes_received_ = 0;
};

}  // namespace dhs

#endif  // DHS_DHT_LOOPBACK_H_
