#include "dht/transport.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "dht/store.h"
#include "dht/wire.h"

namespace dhs {

namespace {

// Absolute expiry of a delivered put: relative TTLs are anchored at the
// delivery tick (the historical client computed expires right after the
// routing lookup succeeded — same instant), saturating instead of
// wrapping for adversarially large TTLs.
uint64_t PutExpiry(const PutFrame& put, uint64_t now) {
  if (put.absolute_expiry || put.expiry == kNoExpiry) return put.expiry;
  return put.expiry > kNoExpiry - now ? kNoExpiry : now + put.expiry;
}

StatusOr<std::string> ServePut(DhtNetwork& network, uint64_t node,
                               const PutFrame& put) {
  NodeStore* store = network.StoreAt(node);
  NodeLoad* load = network.LoadAt(node);
  CHECK(store != nullptr && load != nullptr)
      << "holder " << node << " vanished mid-insert";
  load->stores += 1;
  const uint64_t expires = PutExpiry(put, network.now());
  for (const StoreKey& key : put.keys) {
    store->Put(put.dst_key, key, std::string(), expires);
  }
  AckFrame ack;
  ack.code = static_cast<uint8_t>(StatusCode::kOk);
  ack.node = node;
  return EncodeAck(ack);
}

StatusOr<std::string> ServeMetricQuery(DhtNetwork& network, uint64_t node,
                                       const MetricQueryFrame& query) {
  NodeStore* store = network.StoreAt(node);
  if (store == nullptr) {
    // The node is gone; nothing is charged (the historical probe read
    // returned empty-handed for free in this case).
    return Status::NotFound("metric query holder is gone");
  }
  NodeLoad* load = network.LoadAt(node);
  if (load != nullptr) load->probes += 1;
  VectorResponseFrame response;
  response.metric_id = query.metric_id;
  store->ForEachDhs(query.metric_id, query.bit, network.now(),
                    [&response](const StoreKey& key, const StoreRecord&) {
                      response.vector_ids.push_back(key.vector_id());
                    });
  std::string encoded = EncodeVectorResponse(response);
  // The §5.1 probe-response charge: 8 + 2v, once per exchange.
  network.ChargeBytes(VectorResponsePayloadBytes(response.vector_ids.size()));
  return encoded;
}

StatusOr<std::string> ServeMigrate(DhtNetwork& network, uint64_t node,
                                   const MigrateFrame& migrate) {
  NodeStore* store = network.StoreAt(node);
  if (store == nullptr) {
    return Status::NotFound("migrate target is gone");
  }
  for (const MigrateRecord& record : migrate.records) {
    store->Put(record.dht_key, record.key, record.value, record.expires_at);
  }
  AckFrame ack;
  ack.code = static_cast<uint8_t>(StatusCode::kOk);
  ack.node = node;
  return EncodeAck(ack);
}

}  // namespace

StatusOr<std::string> ServeFrame(DhtNetwork& network, uint64_t node,
                                 std::string_view frame) {
  auto view = ParseFrame(frame);
  if (!view.ok()) return view.status();
  switch (view->type) {
    case FrameType::kProbeOpen: {
      // Opening a walk has no server-side effect: the per-metric reads
      // are separate kMetricQuery exchanges.
      auto open = DecodeProbeOpen(frame);
      if (!open.ok()) return open.status();
      AckFrame ack;
      ack.code = static_cast<uint8_t>(StatusCode::kOk);
      ack.node = node;
      return EncodeAck(ack);
    }
    case FrameType::kMetricQuery: {
      auto query = DecodeMetricQuery(frame);
      if (!query.ok()) return query.status();
      return ServeMetricQuery(network, node, *query);
    }
    case FrameType::kPut: {
      auto put = DecodePut(frame);
      if (!put.ok()) return put.status();
      return ServePut(network, node, *put);
    }
    case FrameType::kMigrate: {
      auto migrate = DecodeMigrate(frame);
      if (!migrate.ok()) return migrate.status();
      return ServeMigrate(network, node, *migrate);
    }
    case FrameType::kSketch: {
      // Sketch payloads travel opaquely (the dht layer does not link
      // the estimator library); delivery just validates and acks.
      auto sketch = DecodeSketch(frame);
      if (!sketch.ok()) return sketch.status();
      AckFrame ack;
      ack.code = static_cast<uint8_t>(StatusCode::kOk);
      ack.node = node;
      return EncodeAck(ack);
    }
    case FrameType::kCountRequest:
      // Counting runs a DhsClient, which lives above the dht layer:
      // dhs/count_service.h wraps a transport and serves these.
      return Status::InvalidArgument(
          "count requests are served by the DHS count service, not the "
          "transport");
    case FrameType::kVectorResponse:
    case FrameType::kAck:
    case FrameType::kCountResponse:
      return Status::InvalidArgument(std::string("wire: ") +
                                     FrameTypeName(view->type) +
                                     " is a reply frame and cannot be served");
  }
  return Status::InvalidArgument("wire: unknown frame type");
}

void SimTransport::Tap(std::string_view frame, size_t charged, int hops,
                       bool delivered) {
  if (!tap_ && network_->metrics() == nullptr) return;
  auto view = ParseFrame(frame);
  if (!view.ok()) return;
  if (network_->metrics() != wire_registry_) {
    wire_registry_ = network_->metrics();
    wire_metrics_.Attach(wire_registry_, name());
  }
  auto accounted = AccountedPayloadBytes(frame);
  wire_metrics_.Record(FrameTypeName(view->type), frame.size(),
                       accounted.ok() ? *accounted : 0);
  if (!tap_) return;
  FrameTapEvent event;
  event.type = view->type;
  event.wire_bytes = frame.size();
  event.charged_bytes = charged;
  event.hops = hops;
  event.delivered = delivered;
  tap_(event);
}

StatusOr<Transport::Delivery> SimTransport::Route(uint64_t origin_node,
                                                  const std::string& frame) {
  auto dst = RoutedDstKey(frame);
  if (!dst.ok()) return dst.status();
  auto accounted = AccountedPayloadBytes(frame);
  if (!accounted.ok()) return accounted.status();
  auto lookup = network_->Lookup(origin_node, *dst, *accounted);
  if (!lookup.ok()) {
    // Faulted route: one message charged, no hops, no bytes (the frame
    // never arrived anywhere).
    Tap(frame, 0, 0, false);
    return lookup.status();
  }
  auto response = ServeFrame(*network_, lookup->node, frame);
  if (!response.ok()) return response.status();
  Tap(frame, *accounted * static_cast<size_t>(lookup->hops), lookup->hops,
      true);
  Tap(*response, 0, 0, true);
  Delivery delivery;
  delivery.node = lookup->node;
  delivery.hops = lookup->hops;
  delivery.response = std::move(*response);
  return delivery;
}

StatusOr<Transport::Delivery> SimTransport::Send(uint64_t from_node,
                                                 uint64_t to_node,
                                                 const std::string& frame) {
  auto accounted = AccountedPayloadBytes(frame);
  if (!accounted.ok()) return accounted.status();
  Status hop = network_->DirectHop(from_node, to_node, *accounted);
  if (!hop.ok()) {
    Tap(frame, 0, 0, false);
    return hop;
  }
  auto response = ServeFrame(*network_, to_node, frame);
  if (!response.ok()) return response.status();
  const bool crossed = from_node != to_node;
  Tap(frame, crossed ? *accounted : 0, crossed ? 1 : 0, true);
  Tap(*response, 0, 0, true);
  Delivery delivery;
  delivery.node = to_node;
  delivery.hops = crossed ? 1 : 0;
  delivery.response = std::move(*response);
  return delivery;
}

StatusOr<std::string> SimTransport::Query(uint64_t node,
                                          const std::string& frame) {
  auto response = ServeFrame(*network_, node, frame);
  if (!response.ok()) {
    Tap(frame, 0, 0, false);
    return response.status();
  }
  auto accounted = AccountedPayloadBytes(*response);
  if (!accounted.ok()) return accounted.status();
  Tap(frame, 0, 0, true);
  // The response-side charge happened in ServeFrame; the tap attributes
  // it to the response frame so charged sums reconcile per frame.
  Tap(*response, *accounted, 0, true);
  return response;
}

}  // namespace dhs
