// The ρ(·) bit-pattern function underlying hash sketches, plus bitmap
// scanning helpers shared by PCSA and (super-)LogLog.
//
// Following the paper's convention (§2.2): ρ(y) is the position of the
// least significant 1-bit of y (position 0 = LSB), and ρ(0) = L, the
// bitmap length. Under a uniform hash, P(ρ(h(d)) = r) = 2^-(r+1).

#ifndef DHS_SKETCH_RHO_H_
#define DHS_SKETCH_RHO_H_

#include <bit>
#include <cstdint>

namespace dhs {

/// Position of the least significant 1-bit of y; `bits` for y == 0.
/// The result is clamped to [0, bits], matching a `bits`-long bitmap.
constexpr int Rho(uint64_t y, int bits) {
  if (y == 0) return bits;
  const int r = std::countr_zero(y);
  return r < bits ? r : bits;
}

/// Position of the least significant 0-bit of `bitmap`, scanning positions
/// [0, bits); returns `bits` when all of them are set. This is the PCSA
/// observable M (the paper's "leftmost 0-bit").
constexpr int LeastSignificantZero(uint64_t bitmap, int bits) {
  const int r = std::countr_one(bitmap);
  return r < bits ? r : bits;
}

/// Position of the most significant 1-bit of `bitmap` within [0, bits);
/// returns -1 for an all-zero bitmap. This is the LogLog observable M
/// (the paper's "rightmost 1-bit").
constexpr int MostSignificantOne(uint64_t bitmap, int bits) {
  if (bits < 64) bitmap &= (uint64_t{1} << bits) - 1;
  if (bitmap == 0) return -1;
  return 63 - std::countl_zero(bitmap);
}

}  // namespace dhs

#endif  // DHS_SKETCH_RHO_H_
