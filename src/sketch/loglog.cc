#include "sketch/loglog.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/check.h"
#include "sketch/rho.h"

namespace dhs {

LogLogSketch::LogLogSketch(int num_bitmaps, int bits, Mode mode)
    : num_bitmaps_(num_bitmaps),
      bits_(bits),
      mode_(mode),
      index_bits_(Log2Floor(static_cast<uint64_t>(num_bitmaps))),
      registers_(static_cast<size_t>(num_bitmaps), -1) {
  CHECK(num_bitmaps >= 2 && num_bitmaps <= (1 << 16) &&
        IsPowerOfTwo(static_cast<uint64_t>(num_bitmaps)))
      << "num_bitmaps = " << num_bitmaps;
  CHECK(bits >= 4 && bits <= 64) << "bits = " << bits;
}

void LogLogSketch::AddHash(uint64_t hash) {
  const uint64_t index = LowBits(hash, index_bits_);
  const uint64_t rest = hash >> index_bits_;
  int r = Rho(rest, bits_);
  if (r >= bits_) r = bits_ - 1;  // clamp the rho(0) = L saturation
  OfferM(static_cast<int>(index), r);
}

void LogLogSketch::OfferM(int bitmap, int value) {
  DCHECK(bitmap >= 0 && bitmap < num_bitmaps_) << "bitmap = " << bitmap;
  DCHECK(value >= 0 && value < bits_) << "value = " << value;
  if (value > registers_[bitmap]) {
    registers_[bitmap] = static_cast<int8_t>(value);
  }
}

double LogLogSketch::Estimate() const {
  const std::vector<int> m = ObservablesM();
  return mode_ == Mode::kPlain ? LogLogEstimateFromM(m)
                               : SuperLogLogEstimateFromM(m);
}

size_t LogLogSketch::SerializedBytes() const {
  return 9 + static_cast<size_t>(num_bitmaps_);
}

Status LogLogSketch::Merge(const CardinalityEstimator& other) {
  const auto* o = dynamic_cast<const LogLogSketch*>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("merge: not a LogLogSketch");
  }
  if (o->num_bitmaps_ != num_bitmaps_ || o->bits_ != bits_) {
    return Status::InvalidArgument("merge: parameter mismatch");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], o->registers_[i]);
  }
  return Status::OK();
}

void LogLogSketch::Clear() {
  for (auto& r : registers_) r = -1;
}

std::vector<int> LogLogSketch::ObservablesM() const {
  return std::vector<int>(registers_.begin(), registers_.end());
}

std::string LogLogSketch::Serialize() const {
  std::string out;
  out.reserve(SerializedBytes());
  AppendLE32(out, static_cast<uint32_t>(num_bitmaps_));
  AppendLE32(out, static_cast<uint32_t>(bits_));
  out.push_back(mode_ == Mode::kPlain ? 0 : 1);
  for (int8_t r : registers_) {
    out.push_back(r < 0 ? static_cast<char>(0xff) : static_cast<char>(r));
  }
  return out;
}

StatusOr<LogLogSketch> LogLogSketch::Deserialize(const std::string& data) {
  if (data.size() < 9) return Status::InvalidArgument("loglog: short header");
  const uint32_t m = LoadLE32(data.data());
  const uint32_t bits = LoadLE32(data.data() + 4);
  const uint8_t mode_byte = static_cast<uint8_t>(data[8]);
  if (m < 2 || m > (1u << 16) || !IsPowerOfTwo(m) || bits < 4 || bits > 64 ||
      mode_byte > 1) {
    return Status::InvalidArgument("loglog: bad parameters");
  }
  if (data.size() != 9 + m) {
    return Status::InvalidArgument("loglog: truncated payload");
  }
  LogLogSketch sketch(static_cast<int>(m), static_cast<int>(bits),
                      mode_byte == 0 ? Mode::kPlain : Mode::kSuperTrunc);
  for (uint32_t i = 0; i < m; ++i) {
    const uint8_t byte = static_cast<uint8_t>(data[9 + i]);
    if (byte == 0xff) {
      sketch.registers_[i] = -1;
    } else if (byte < bits) {
      sketch.registers_[i] = static_cast<int8_t>(byte);
    } else {
      return Status::InvalidArgument("loglog: register out of range");
    }
  }
  return sketch;
}

bool LogLogSketch::Empty() const {
  for (int8_t r : registers_) {
    if (r >= 0) return false;
  }
  return true;
}

}  // namespace dhs
