// (super-)LogLog counting (Durand & Flajolet, ESA 2003).
//
// m small registers, register i holding M^<i> = max rho over the items
// routed to bucket i. Space is O(m log log n_max) — registers, not
// bitmaps. Estimation is either plain LogLog (alpha_m * m * 2^mean) or
// super-LogLog with the theta0-truncation rule, standard error
// ~= 1.05 / sqrt(m).

#ifndef DHS_SKETCH_LOGLOG_H_
#define DHS_SKETCH_LOGLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sketch/estimator.h"

namespace dhs {

/// A local (single-machine) LogLog / super-LogLog sketch. Copyable.
class LogLogSketch : public CardinalityEstimator {
 public:
  enum class Mode {
    kPlain,       // alpha_m * m * 2^mean
    kSuperTrunc,  // truncation rule, theta0 = 0.7 (the paper's DHS-sLL)
  };

  /// `num_bitmaps` (m) must be a power of two in [2, 2^16]; `bits` caps
  /// the register value (register width ceil(log2 bits) bits).
  LogLogSketch(int num_bitmaps, int bits, Mode mode = Mode::kSuperTrunc);

  void AddHash(uint64_t hash) override;
  double Estimate() const override;
  int num_bitmaps() const override { return num_bitmaps_; }
  size_t SerializedBytes() const override;
  [[nodiscard]] Status Merge(const CardinalityEstimator& other) override;
  void Clear() override;

  int bits() const { return bits_; }
  Mode mode() const { return mode_; }

  /// Register values; -1 denotes an empty bucket.
  std::vector<int> ObservablesM() const;

  /// Direct register update (used by the convergecast baseline and tests).
  void OfferM(int bitmap, int value);

  /// Flat serialization: header {m, bits, mode} then one byte per
  /// register (0xff = empty).
  std::string Serialize() const;
  static StatusOr<LogLogSketch> Deserialize(const std::string& data);

  bool Empty() const;

 private:
  int num_bitmaps_;
  int bits_;
  Mode mode_;
  int index_bits_;
  std::vector<int8_t> registers_;  // -1 = empty
};

}  // namespace dhs

#endif  // DHS_SKETCH_LOGLOG_H_
