#include "sketch/hyperloglog.h"

#include <cmath>

#include "common/check.h"

#include "common/bit_util.h"
#include "sketch/rho.h"

namespace dhs {

double HyperLogLogAlpha(int m) {
  CHECK_GE(m, 16);
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

double HyperLogLogEstimateFromM(const std::vector<int>& max_rho) {
  CHECK(!max_rho.empty());
  const int m = static_cast<int>(max_rho.size());
  // Registers are 0-indexed max-rho values; the HLL formulation uses
  // 1-indexed ranks with 0 = empty, i.e. rank = v + 1.
  double harmonic = 0.0;
  int empty = 0;
  for (int v : max_rho) {
    if (v < 0) {
      harmonic += 1.0;  // 2^0
      ++empty;
    } else {
      harmonic += std::exp2(-(v + 1));
    }
  }
  const double md = static_cast<double>(m);
  const double raw = HyperLogLogAlpha(m) * md * md / harmonic;
  // Small-range correction: linear counting while empty registers exist.
  if (raw <= 2.5 * md && empty > 0) {
    return md * std::log(md / static_cast<double>(empty));
  }
  // With 64-bit hashes the classic 32-bit large-range correction is
  // unnecessary for any practical cardinality.
  return raw;
}

HllSketch::HllSketch(int num_bitmaps, int bits)
    : num_bitmaps_(num_bitmaps),
      bits_(bits),
      index_bits_(Log2Floor(static_cast<uint64_t>(num_bitmaps))),
      registers_(static_cast<size_t>(num_bitmaps), -1) {
  CHECK(num_bitmaps >= 16 && num_bitmaps <= (1 << 16) &&
        IsPowerOfTwo(static_cast<uint64_t>(num_bitmaps)))
      << "num_bitmaps = " << num_bitmaps;
  CHECK(bits >= 4 && bits <= 64) << "bits = " << bits;
}

void HllSketch::AddHash(uint64_t hash) {
  const uint64_t index = LowBits(hash, index_bits_);
  const uint64_t rest = hash >> index_bits_;
  int r = Rho(rest, bits_);
  if (r >= bits_) r = bits_ - 1;
  OfferM(static_cast<int>(index), r);
}

void HllSketch::OfferM(int bitmap, int value) {
  DCHECK(bitmap >= 0 && bitmap < num_bitmaps_) << "bitmap = " << bitmap;
  DCHECK(value >= 0 && value < bits_) << "value = " << value;
  if (value > registers_[bitmap]) {
    registers_[bitmap] = static_cast<int8_t>(value);
  }
}

double HllSketch::Estimate() const {
  return HyperLogLogEstimateFromM(ObservablesM());
}

size_t HllSketch::SerializedBytes() const {
  return 8 + static_cast<size_t>(num_bitmaps_);
}

Status HllSketch::Merge(const CardinalityEstimator& other) {
  const auto* o = dynamic_cast<const HllSketch*>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("merge: not an HllSketch");
  }
  if (o->num_bitmaps_ != num_bitmaps_ || o->bits_ != bits_) {
    return Status::InvalidArgument("merge: parameter mismatch");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], o->registers_[i]);
  }
  return Status::OK();
}

void HllSketch::Clear() {
  for (auto& r : registers_) r = -1;
}

std::vector<int> HllSketch::ObservablesM() const {
  return std::vector<int>(registers_.begin(), registers_.end());
}

std::string HllSketch::Serialize() const {
  std::string out;
  out.reserve(SerializedBytes());
  AppendLE32(out, static_cast<uint32_t>(num_bitmaps_));
  AppendLE32(out, static_cast<uint32_t>(bits_));
  for (int8_t r : registers_) {
    out.push_back(r < 0 ? static_cast<char>(0xff) : static_cast<char>(r));
  }
  return out;
}

StatusOr<HllSketch> HllSketch::Deserialize(const std::string& data) {
  if (data.size() < 8) return Status::InvalidArgument("hll: short header");
  const uint32_t m = LoadLE32(data.data());
  const uint32_t bits = LoadLE32(data.data() + 4);
  if (m < 16 || m > (1u << 16) || !IsPowerOfTwo(m) || bits < 4 ||
      bits > 64) {
    return Status::InvalidArgument("hll: bad parameters");
  }
  if (data.size() != 8 + m) {
    return Status::InvalidArgument("hll: truncated payload");
  }
  HllSketch sketch(static_cast<int>(m), static_cast<int>(bits));
  for (uint32_t i = 0; i < m; ++i) {
    const uint8_t byte = static_cast<uint8_t>(data[8 + i]);
    if (byte == 0xff) {
      sketch.registers_[i] = -1;
    } else if (byte < bits) {
      sketch.registers_[i] = static_cast<int8_t>(byte);
    } else {
      return Status::InvalidArgument("hll: register out of range");
    }
  }
  return sketch;
}

bool HllSketch::Empty() const {
  for (int8_t r : registers_) {
    if (r >= 0) return false;
  }
  return true;
}

}  // namespace dhs
