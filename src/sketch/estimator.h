// Common interface for duplicate-insensitive cardinality estimators, plus
// the estimate formulas shared between local sketches and the distributed
// (DHS) counting algorithm, which reconstructs only the per-bitmap
// observables M^<i> rather than full bitmaps.

#ifndef DHS_SKETCH_ESTIMATOR_H_
#define DHS_SKETCH_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dhs {

/// A mergeable, duplicate-insensitive estimator of the number of distinct
/// 64-bit hash values observed. Implementations: PcsaSketch, LogLogSketch.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Records one (pre-hashed) item. Adding the same hash twice is a no-op
  /// on the estimate (duplicate insensitivity).
  virtual void AddHash(uint64_t hash) = 0;

  /// Current estimate of the number of distinct hashes added.
  virtual double Estimate() const = 0;

  /// Number of bitmap vectors m (stochastic averaging width).
  virtual int num_bitmaps() const = 0;

  /// Serialized size in bytes (used for bandwidth accounting).
  virtual size_t SerializedBytes() const = 0;

  /// Set-union merge: afterwards this sketch estimates |A ∪ B|. Fails with
  /// InvalidArgument on parameter mismatch (m or bitmap length).
  [[nodiscard]] virtual Status Merge(const CardinalityEstimator& other) = 0;

  /// Resets to the empty-set state.
  virtual void Clear() = 0;
};

/// PCSA estimate (Flajolet–Martin 1985, eq. 4 of the paper) from the
/// per-bitmap leftmost-zero positions M^<i> (one entry per bitmap).
/// When `bias_correction` is set, divides by (1 + 0.31/m), the paper's
/// first-order bias term.
double PcsaEstimateFromM(const std::vector<int>& leftmost_zero,
                         bool bias_correction = true);

/// Plain LogLog estimate: alpha_m * m * 2^(mean M), with alpha_m from the
/// Durand–Flajolet closed form. Entries of -1 (empty bitmap) count as 0.
double LogLogEstimateFromM(const std::vector<int>& max_rho);

/// Super-LogLog estimate with the truncation rule (paper eq. 2): keep the
/// m0 = floor(theta0 * m) smallest M values and apply the calibrated
/// constant alpha~_m. theta0 = 0.7 is the near-optimal published value.
double SuperLogLogEstimateFromM(const std::vector<int>& max_rho,
                                double theta0 = 0.7);

/// The Durand–Flajolet constant alpha_m =
/// (Gamma(-1/m) * (1 - 2^(1/m)) / ln 2)^-m. Requires m >= 2.
/// alpha_m -> 0.39701... as m -> infinity.
double LogLogAlpha(int m);

/// The calibrated truncated-estimator constant alpha~_m for theta0 = 0.7.
/// Values for power-of-two m come from a Monte-Carlo calibration table
/// (tools/calibrate_sll.cc); other m are geometrically interpolated.
double SuperLogLogAlpha(int m);

/// Minimum hash length (bits) needed by super-LogLog, paper eq. 3:
/// H0 = log m + ceil(log(n_max / m) + 3).
int SuperLogLogHashBits(int m, uint64_t n_max);

}  // namespace dhs

#endif  // DHS_SKETCH_ESTIMATOR_H_
