// PCSA — Probabilistic Counting with Stochastic Averaging
// (Flajolet & Martin, JCSS 1985).
//
// m bitmap vectors of `bits` positions each. An item with hash h selects
// bitmap h mod m and sets bit rho(h div m). The estimate combines the
// per-bitmap leftmost-zero positions (estimator.h::PcsaEstimateFromM).
// Standard error ~= 0.78 / sqrt(m).

#ifndef DHS_SKETCH_PCSA_H_
#define DHS_SKETCH_PCSA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sketch/estimator.h"

namespace dhs {

/// A local (single-machine) PCSA sketch. Copyable.
class PcsaSketch : public CardinalityEstimator {
 public:
  /// `num_bitmaps` must be a power of two in [1, 2^16]; `bits` in [4, 64].
  /// `bits` should be at least log2(max expected cardinality / m) + 4
  /// (cf. the paper's guidance on DHS key length).
  PcsaSketch(int num_bitmaps, int bits);

  void AddHash(uint64_t hash) override;
  double Estimate() const override;
  int num_bitmaps() const override { return num_bitmaps_; }
  size_t SerializedBytes() const override;
  [[nodiscard]] Status Merge(const CardinalityEstimator& other) override;
  void Clear() override;

  int bits() const { return bits_; }

  /// Direct bit access (used by tests and the convergecast baseline).
  bool TestBit(int bitmap, int position) const;
  void SetBit(int bitmap, int position);

  /// Per-bitmap leftmost-zero observables M^<i>.
  std::vector<int> ObservablesM() const;

  /// Flat little-endian serialization: header {m, bits} then ceil(bits/8)
  /// bytes per bitmap. Deserialization fails on malformed input.
  std::string Serialize() const;
  static StatusOr<PcsaSketch> Deserialize(const std::string& data);

  /// True iff no item has been added.
  bool Empty() const;

 private:
  int num_bitmaps_;
  int bits_;
  int index_bits_;  // log2(num_bitmaps_)
  std::vector<uint64_t> bitmaps_;
};

}  // namespace dhs

#endif  // DHS_SKETCH_PCSA_H_
