// HyperLogLog (Flajolet, Fusy, Gandouet, Meunier 2007) — the successor
// of the paper's super-LogLog estimator, included as the natural
// extension: it consumes exactly the same per-bitmap max-rho observables
// as (super-)LogLog, so the DHS counting walk supports it with no
// protocol change; only the estimate formula differs (harmonic instead
// of truncated geometric mean), with standard error ~= 1.04/sqrt(m).

#ifndef DHS_SKETCH_HYPERLOGLOG_H_
#define DHS_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sketch/estimator.h"

namespace dhs {

/// HyperLogLog estimate from per-bitmap max-rho observables (entries of
/// -1 denote empty bitmaps). Includes the reference small-range (linear
/// counting) and 64-bit-hash large-range corrections.
double HyperLogLogEstimateFromM(const std::vector<int>& max_rho);

/// The HLL bias constant alpha_m = (m * integral)^(-1); for m >= 128
/// this is 0.7213 / (1 + 1.079/m) per the original paper.
double HyperLogLogAlpha(int m);

/// A local HyperLogLog sketch. Register layout matches LogLogSketch so
/// merged/distributed state is interchangeable.
class HllSketch : public CardinalityEstimator {
 public:
  /// `num_bitmaps` must be a power of two in [16, 2^16]; `bits` caps the
  /// register value.
  HllSketch(int num_bitmaps, int bits);

  void AddHash(uint64_t hash) override;
  double Estimate() const override;
  int num_bitmaps() const override { return num_bitmaps_; }
  size_t SerializedBytes() const override;
  [[nodiscard]] Status Merge(const CardinalityEstimator& other) override;
  void Clear() override;

  int bits() const { return bits_; }
  std::vector<int> ObservablesM() const;
  void OfferM(int bitmap, int value);

  std::string Serialize() const;
  static StatusOr<HllSketch> Deserialize(const std::string& data);

  bool Empty() const;

 private:
  int num_bitmaps_;
  int bits_;
  int index_bits_;
  std::vector<int8_t> registers_;  // -1 = empty
};

}  // namespace dhs

#endif  // DHS_SKETCH_HYPERLOGLOG_H_
