// rho.h is header-only; this TU exists so the build exposes a .cc per
// module and to anchor the header's compilation.
#include "sketch/rho.h"

namespace dhs {

static_assert(Rho(0, 24) == 24);
static_assert(Rho(1, 24) == 0);
static_assert(Rho(0b1000, 24) == 3);
static_assert(LeastSignificantZero(0b0111, 24) == 3);
static_assert(LeastSignificantZero(0xffffff, 24) == 24);
static_assert(MostSignificantOne(0b0110, 24) == 2);
static_assert(MostSignificantOne(0, 24) == -1);

}  // namespace dhs
