#include "sketch/pcsa.h"

#include "common/bit_util.h"
#include "common/check.h"
#include "sketch/rho.h"

namespace dhs {

PcsaSketch::PcsaSketch(int num_bitmaps, int bits)
    : num_bitmaps_(num_bitmaps),
      bits_(bits),
      index_bits_(num_bitmaps > 1
                      ? Log2Floor(static_cast<uint64_t>(num_bitmaps))
                      : 0),
      bitmaps_(static_cast<size_t>(num_bitmaps), 0) {
  CHECK(num_bitmaps >= 1 && num_bitmaps <= (1 << 16) &&
        IsPowerOfTwo(static_cast<uint64_t>(num_bitmaps)))
      << "num_bitmaps = " << num_bitmaps;
  CHECK(bits >= 4 && bits <= 64) << "bits = " << bits;
}

void PcsaSketch::AddHash(uint64_t hash) {
  const uint64_t index = LowBits(hash, index_bits_);
  const uint64_t rest = hash >> index_bits_;
  const int r = Rho(rest, bits_);
  if (r < bits_) {
    bitmaps_[index] |= uint64_t{1} << r;
  } else {
    // rho saturated at the bitmap length: set the top position, matching
    // the paper's rho(0) = L convention while staying within the bitmap.
    bitmaps_[index] |= uint64_t{1} << (bits_ - 1);
  }
}

double PcsaSketch::Estimate() const { return PcsaEstimateFromM(ObservablesM()); }

size_t PcsaSketch::SerializedBytes() const {
  const size_t per_bitmap = (static_cast<size_t>(bits_) + 7) / 8;
  return 8 + per_bitmap * static_cast<size_t>(num_bitmaps_);
}

Status PcsaSketch::Merge(const CardinalityEstimator& other) {
  const auto* o = dynamic_cast<const PcsaSketch*>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("merge: not a PcsaSketch");
  }
  if (o->num_bitmaps_ != num_bitmaps_ || o->bits_ != bits_) {
    return Status::InvalidArgument("merge: parameter mismatch");
  }
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    bitmaps_[i] |= o->bitmaps_[i];
  }
  return Status::OK();
}

void PcsaSketch::Clear() {
  for (auto& b : bitmaps_) b = 0;
}

bool PcsaSketch::TestBit(int bitmap, int position) const {
  DCHECK(bitmap >= 0 && bitmap < num_bitmaps_) << "bitmap = " << bitmap;
  DCHECK(position >= 0 && position < bits_) << "position = " << position;
  return (bitmaps_[bitmap] >> position) & 1u;
}

void PcsaSketch::SetBit(int bitmap, int position) {
  DCHECK(bitmap >= 0 && bitmap < num_bitmaps_) << "bitmap = " << bitmap;
  DCHECK(position >= 0 && position < bits_) << "position = " << position;
  bitmaps_[bitmap] |= uint64_t{1} << position;
}

std::vector<int> PcsaSketch::ObservablesM() const {
  std::vector<int> m(bitmaps_.size());
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    m[i] = LeastSignificantZero(bitmaps_[i], bits_);
  }
  return m;
}

std::string PcsaSketch::Serialize() const {
  std::string out;
  out.reserve(SerializedBytes());
  AppendLE32(out, static_cast<uint32_t>(num_bitmaps_));
  AppendLE32(out, static_cast<uint32_t>(bits_));
  const int per_bitmap = (bits_ + 7) / 8;
  for (uint64_t b : bitmaps_) {
    for (int i = 0; i < per_bitmap; ++i) {
      out.push_back(static_cast<char>(b >> (8 * i)));
    }
  }
  return out;
}

StatusOr<PcsaSketch> PcsaSketch::Deserialize(const std::string& data) {
  if (data.size() < 8) return Status::InvalidArgument("pcsa: short header");
  const uint32_t m = LoadLE32(data.data());
  const uint32_t bits = LoadLE32(data.data() + 4);
  if (m < 1 || m > (1u << 16) || !IsPowerOfTwo(m) || bits < 4 || bits > 64) {
    return Status::InvalidArgument("pcsa: bad parameters");
  }
  const size_t per_bitmap = (bits + 7) / 8;
  if (data.size() != 8 + per_bitmap * m) {
    return Status::InvalidArgument("pcsa: truncated payload");
  }
  PcsaSketch sketch(static_cast<int>(m), static_cast<int>(bits));
  size_t off = 8;
  for (uint32_t i = 0; i < m; ++i) {
    uint64_t b = 0;
    for (size_t j = 0; j < per_bitmap; ++j) {
      b |= static_cast<uint64_t>(static_cast<uint8_t>(data[off++])) << (8 * j);
    }
    // Strict: padding bits beyond the bitmap width must be zero, so
    // Deserialize(Serialize(s)) == s holds byte-for-byte both ways and
    // TestBit's position < bits_ contract is never violated by wire data.
    if (bits < 64 && (b >> bits) != 0) {
      return Status::InvalidArgument("pcsa: stray bits beyond bitmap width");
    }
    sketch.bitmaps_[i] = b;
  }
  return sketch;
}

bool PcsaSketch::Empty() const {
  for (uint64_t b : bitmaps_) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace dhs
