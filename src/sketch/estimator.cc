#include "sketch/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

#include "common/bit_util.h"

namespace dhs {

double PcsaEstimateFromM(const std::vector<int>& leftmost_zero,
                         bool bias_correction) {
  CHECK(!leftmost_zero.empty());
  // Every bitmap has its lowest bit clear: the set is (almost surely)
  // empty. The asymptotic formula would report ~1.3m here.
  if (std::all_of(leftmost_zero.begin(), leftmost_zero.end(),
                  [](int v) { return v <= 0; })) {
    return 0.0;
  }
  const double m = static_cast<double>(leftmost_zero.size());
  double sum = 0.0;
  for (int v : leftmost_zero) sum += static_cast<double>(v);
  // E(n) = (1 / 0.77351) * m * 2^(mean M)    [paper eq. 4]
  constexpr double kPhi = 0.77351;
  double estimate = m / kPhi * std::exp2(sum / m);
  if (bias_correction) {
    estimate /= 1.0 + 0.31 / m;
  }
  return estimate;
}

double LogLogEstimateFromM(const std::vector<int>& max_rho) {
  CHECK(!max_rho.empty());
  const double m = static_cast<double>(max_rho.size());
  double sum = 0.0;
  for (int v : max_rho) sum += static_cast<double>(std::max(v, 0));
  // Durand-Flajolet's closed-form alpha_m assumes 1-indexed rho (their
  // rho(y) ranks the first 1-bit starting at 1); our registers store the
  // 0-indexed bit position, hence the +1 in the exponent.
  return LogLogAlpha(static_cast<int>(max_rho.size())) * m *
         std::exp2(sum / m + 1.0);
}

double SuperLogLogEstimateFromM(const std::vector<int>& max_rho,
                                double theta0) {
  CHECK(!max_rho.empty());
  // No bitmap observed any item: the set is empty.
  if (std::all_of(max_rho.begin(), max_rho.end(),
                  [](int v) { return v < 0; })) {
    return 0.0;
  }
  const int m = static_cast<int>(max_rho.size());
  int m0 = static_cast<int>(theta0 * m);
  m0 = std::clamp(m0, 1, m);

  std::vector<int> sorted(max_rho);
  for (int& v : sorted) v = std::max(v, 0);  // empty bitmaps count as 0
  std::nth_element(sorted.begin(), sorted.begin() + (m0 - 1), sorted.end());
  double sum = 0.0;
  for (int i = 0; i < m0; ++i) sum += static_cast<double>(sorted[i]);
  // E(n) = alpha~_m * m0 * 2^(truncated mean)    [paper eq. 2]
  return SuperLogLogAlpha(m) * m0 * std::exp2(sum / m0);
}

double LogLogAlpha(int m) {
  CHECK_GE(m, 2);
  // alpha_m = (Gamma(-1/m) * (1 - 2^(1/m)) / ln 2)^-m
  //         = (m * Gamma(1 - 1/m) * (2^(1/m) - 1) / ln 2)^-m,
  // using Gamma(-x) = -Gamma(1 - x)/x; all factors positive, so evaluate in
  // the log domain for stability at large m.
  const double inv_m = 1.0 / static_cast<double>(m);
  const double log_term = std::log(static_cast<double>(m)) +
                          std::lgamma(1.0 - inv_m) +
                          std::log(std::exp2(inv_m) - 1.0) -
                          std::log(std::log(2.0));
  return std::exp(-static_cast<double>(m) * log_term);
}

namespace {

// Monte-Carlo-calibrated constants for the theta0 = 0.7 truncated
// estimator (tools/calibrate_sll.cc: 600 trials of n = 10^6 distinct
// items per m). Entry i corresponds to m = 2^(i + 4).
struct SllAlphaTable {
  static constexpr int kMinLogM = 4;   // m = 16
  static constexpr int kMaxLogM = 13;  // m = 8192
  static constexpr double kAlpha[kMaxLogM - kMinLogM + 1] = {
      2.13669, 2.19663, 2.24545, 2.21000, 2.19037,
      2.18331, 2.18843, 2.18704, 2.18405, 2.18612,
  };
};

}  // namespace

double SuperLogLogAlpha(int m) {
  CHECK_GE(m, 2);
  const double log_m = std::log2(static_cast<double>(m));
  const double lo = SllAlphaTable::kMinLogM;
  const double hi = SllAlphaTable::kMaxLogM;
  if (log_m <= lo) return SllAlphaTable::kAlpha[0];
  if (log_m >= hi) {
    return SllAlphaTable::kAlpha[SllAlphaTable::kMaxLogM -
                                 SllAlphaTable::kMinLogM];
  }
  const int idx = static_cast<int>(log_m) - SllAlphaTable::kMinLogM;
  const double frac = log_m - std::floor(log_m);
  const double a = SllAlphaTable::kAlpha[idx];
  const double b = SllAlphaTable::kAlpha[idx + 1];
  return a + frac * (b - a);
}

int SuperLogLogHashBits(int m, uint64_t n_max) {
  CHECK(m >= 1 && IsPowerOfTwo(static_cast<uint64_t>(m))) << "m = " << m;
  CHECK_GE(n_max, static_cast<uint64_t>(m));
  const int log_m = Log2Floor(static_cast<uint64_t>(m));
  const double per_bucket =
      static_cast<double>(n_max) / static_cast<double>(m);
  return log_m +
         static_cast<int>(std::ceil(std::log2(per_bucket) + 3.0));
}

}  // namespace dhs
