#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace dhs {
namespace {

/// Renders an unsigned/signed integer or double to the shortest token
/// that round-trips. Doubles use %.17g, which is lossless for IEEE 754
/// binary64 and produces the same digits on every libc we build with.
std::string RenderU64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

std::string RenderI64(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

std::string RenderF64(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Writes `text` as the body of a JSON string (no surrounding quotes),
/// escaping the characters RFC 8259 requires.
void WriteEscaped(std::ostream& os, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void WriteArg(std::ostream& os, const TraceArg& arg) {
  os << '"';
  WriteEscaped(os, arg.key);
  os << "\":";
  if (arg.quoted) {
    os << '"';
    WriteEscaped(os, arg.value);
    os << '"';
  } else {
    os << arg.value;
  }
}

}  // namespace

TraceArg TraceArg::U64(std::string_view key, uint64_t value) {
  return TraceArg{std::string(key), RenderU64(value), false};
}

TraceArg TraceArg::I64(std::string_view key, int64_t value) {
  return TraceArg{std::string(key), RenderI64(value), false};
}

TraceArg TraceArg::F64(std::string_view key, double value) {
  return TraceArg{std::string(key), RenderF64(value), false};
}

TraceArg TraceArg::Str(std::string_view key, std::string_view value) {
  return TraceArg{std::string(key), std::string(value), true};
}

TraceArg TraceArg::Bool(std::string_view key, bool value) {
  return TraceArg{std::string(key), value ? "true" : "false", false};
}

void Tracer::Bind(const MessageStats* stats, const uint64_t* clock) {
  DCHECK_EQ(stack_.size(), 0u) << "Tracer::Bind with a span still open";
  stats_ = stats;
  clock_ = clock;
}

uint64_t Tracer::BeginSpan(std::string_view name) {
  if (!enabled_) return 0;
  TraceSpanRecord span;
  span.id = spans_.size() + 1;
  span.parent = stack_.empty() ? 0 : stack_.back();
  span.name = std::string(name);
  span.begin_tick = NowTick();
  span.begin_seq = seq_++;
  span.open = true;
  stack_.push_back(span.id);
  begin_stats_.push_back(StatsSnapshot());
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  if (id == 0) return;
  DCHECK(!stack_.empty()) << "EndSpan(" << id << ") with no open span";
  DCHECK_EQ(stack_.back(), id) << "spans must close in LIFO order";
  stack_.pop_back();
  TraceSpanRecord& span = spans_[id - 1];
  span.end_tick = NowTick();
  span.end_seq = seq_++;
  span.delta = StatsSnapshot() - begin_stats_[id - 1];
  span.open = false;
}

void Tracer::AnnotateSpan(uint64_t id, TraceArg arg) {
  if (id == 0) return;
  DCHECK_LE(id, spans_.size());
  spans_[id - 1].args.push_back(std::move(arg));
}

void Tracer::Instant(std::string_view name, std::vector<TraceArg> args) {
  if (!enabled_) return;
  InstantRecord rec;
  rec.seq = seq_++;
  rec.tick = NowTick();
  rec.span = stack_.empty() ? 0 : stack_.back();
  rec.name = std::string(name);
  rec.args = std::move(args);
  instants_.push_back(std::move(rec));
}

MessageStats Tracer::RootSpanTotal() const {
  MessageStats total;
  for (const TraceSpanRecord& span : spans_) {
    if (span.parent == 0 && !span.open) total += span.delta;
  }
  return total;
}

void Tracer::Clear() {
  DCHECK_EQ(stack_.size(), 0u) << "Tracer::Clear with a span still open";
  seq_ = 0;
  spans_.clear();
  begin_stats_.clear();
  instants_.clear();
}

void Tracer::WriteEvents(std::ostream& os, bool chrome,
                         const char* separator) const {
  // Merge the three per-span/instant event kinds back into one stream
  // ordered by the global sequence number. Each span contributes a
  // begin event at begin_seq and (when closed) an end event at end_seq;
  // each instant contributes one event at its seq. Rather than sort, we
  // walk seq values 0..seq_-1 and keep cursors into the three sources,
  // all of which are individually seq-ascending.
  size_t begin_cursor = 0;  // spans_ is begin_seq-ascending
  size_t instant_cursor = 0;
  // End events are not globally sorted by span index, so index them.
  std::vector<std::pair<uint64_t, uint64_t>> ends;  // (end_seq, span id)
  ends.reserve(spans_.size());
  for (const TraceSpanRecord& span : spans_) {
    if (!span.open) ends.emplace_back(span.end_seq, span.id);
  }
  std::sort(ends.begin(), ends.end());
  size_t end_cursor = 0;

  bool first = true;
  for (uint64_t seq = 0; seq < seq_; ++seq) {
    const TraceSpanRecord* begin_span = nullptr;
    const TraceSpanRecord* end_span = nullptr;
    const InstantRecord* instant = nullptr;
    if (begin_cursor < spans_.size() &&
        spans_[begin_cursor].begin_seq == seq) {
      begin_span = &spans_[begin_cursor++];
    } else if (end_cursor < ends.size() && ends[end_cursor].first == seq) {
      end_span = &spans_[ends[end_cursor++].second - 1];
    } else if (instant_cursor < instants_.size() &&
               instants_[instant_cursor].seq == seq) {
      instant = &instants_[instant_cursor++];
    } else {
      continue;  // seq of a still-open span's missing end event
    }

    if (!first) os << separator;
    first = false;

    const std::string_view name = begin_span != nullptr ? begin_span->name
                                  : end_span != nullptr ? end_span->name
                                                        : instant->name;
    const uint64_t tick = begin_span != nullptr ? begin_span->begin_tick
                          : end_span != nullptr ? end_span->end_tick
                                                : instant->tick;
    const char* phase = begin_span != nullptr ? "B"
                        : end_span != nullptr ? "E"
                                              : "i";

    os << "{";
    if (chrome) {
      os << "\"name\":\"";
      WriteEscaped(os, name);
      os << "\",\"ph\":\"" << phase << "\",\"ts\":" << tick
         << ",\"pid\":1,\"tid\":1";
      if (instant != nullptr) os << ",\"s\":\"t\"";
      os << ",\"args\":{\"seq\":" << seq;
    } else {
      os << "\"ev\":\"" << phase << "\",\"name\":\"";
      WriteEscaped(os, name);
      os << "\",\"seq\":" << seq << ",\"tick\":" << tick;
    }

    if (begin_span != nullptr) {
      os << ",\"span\":" << begin_span->id
         << ",\"parent\":" << begin_span->parent;
    } else if (end_span != nullptr) {
      os << ",\"span\":" << end_span->id << ",\"messages\":"
         << end_span->delta.messages << ",\"hops\":" << end_span->delta.hops
         << ",\"bytes\":" << end_span->delta.bytes;
      for (const TraceArg& arg : end_span->args) {
        os << ',';
        WriteArg(os, arg);
      }
    } else {
      os << ",\"span\":" << instant->span;
      for (const TraceArg& arg : instant->args) {
        os << ',';
        WriteArg(os, arg);
      }
    }

    if (chrome) os << "}";
    os << "}";
  }
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  WriteEvents(os, /*chrome=*/true, ",\n");
  os << "\n]}\n";
}

void Tracer::WriteJsonl(std::ostream& os) const {
  WriteEvents(os, /*chrome=*/false, "\n");
  os << "\n";
}

}  // namespace dhs
