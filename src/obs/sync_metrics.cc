#include "obs/sync_metrics.h"

#include <string>

#include "common/check.h"
#include "common/sync.h"

namespace dhs {

namespace {

void RaiseTo(MetricsRegistry* registry, const char* metric,
             const std::string& mutex_name, uint64_t snapshot) {
  Counter* counter =
      registry->GetCounter(metric, {{"mutex", mutex_name}});
  // Counters are monotone and so is the snapshot; export the delta so
  // repeated calls settle on the snapshot instead of double-counting.
  CHECK_GE(snapshot, counter->value())
      << metric << "{mutex=" << mutex_name << "} went backwards";
  counter->Increment(snapshot - counter->value());
}

}  // namespace

void ExportSyncMetrics(MetricsRegistry* registry) {
  for (const MutexProfile& profile : SnapshotMutexProfiles()) {
    const std::string name = profile.name;
    RaiseTo(registry, "sync_mutex_acquisitions_total", name,
            profile.acquisitions);
    RaiseTo(registry, "sync_mutex_contended_total", name,
            profile.contended);
    RaiseTo(registry, "sync_mutex_wait_ticks_total", name,
            profile.wait_ns);
  }
}

}  // namespace dhs
