// Bridges the lock diagnostics in common/sync.h into the
// MetricsRegistry: per-mutex-name contention counters become labeled
// counter series. Lives in obs/ because dhs_common cannot depend on
// dhs_obs — sync.h only exposes the SnapshotMutexProfiles() data, and
// this translation unit owns the naming.

#ifndef DHS_OBS_SYNC_METRICS_H_
#define DHS_OBS_SYNC_METRICS_H_

#include "obs/metrics.h"

namespace dhs {

/// Exports every known mutex profile into `registry` as
///
///   sync_mutex_acquisitions_total{mutex=<name>}
///   sync_mutex_contended_total{mutex=<name>}
///   sync_mutex_wait_ticks_total{mutex=<name>}   (nanoseconds)
///
/// Idempotent: each call raises every series to the current snapshot
/// value (counters are monotone, so the delta since the last export is
/// added), making it safe to call once per dump or repeatedly.
void ExportSyncMetrics(MetricsRegistry* registry);

}  // namespace dhs

#endif  // DHS_OBS_SYNC_METRICS_H_
