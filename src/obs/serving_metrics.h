// Metrics for the DHS serving layer (dhs/serving.h).
//
// The serving layer batches client requests into engine waves; these
// series expose the batching economics — how many requests arrived,
// how many waves actually hit the network, how many requests rode a
// coalesced wave for free — plus the frontier-cache invalidation
// traffic and the lim the online tuner is currently serving with:
//
//   dhs_serving_requests_total{op=count|insert}
//   dhs_serving_waves_total{op=count|insert}
//   dhs_serving_coalesced_total
//   dhs_serving_frontier_invalidations_total{reason=insert|fault|signal}
//   dhs_serving_lim                                   (gauge)
//
// The obs layer sits below dhs in the include DAG, so geometry and
// estimator arrive as plain label strings, never as dhs enums.

#ifndef DHS_OBS_SERVING_METRICS_H_
#define DHS_OBS_SERVING_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace dhs {

/// Interns the serving series lazily and fans the serving layer's
/// events into them. Null registry → every call is a no-op (metrics
/// are opt-in everywhere in the simulator).
class ServingMetrics {
 public:
  ServingMetrics() = default;

  /// Re-points the helper (the serving layer attaches metrics from its
  /// backend's network, which may attach a registry after
  /// construction, mirroring DhtNetwork::AttachMetrics).
  void Attach(MetricsRegistry* registry, std::string geometry,
              std::string estimator) {
    registry_ = registry;
    geometry_ = std::move(geometry);
    estimator_ = std::move(estimator);
    interned_ = false;
  }

  void RecordCountRequests(uint64_t n) {
    if (Ready()) count_requests_->Increment(n);
  }
  void RecordInsertRequests(uint64_t n) {
    if (Ready()) insert_requests_->Increment(n);
  }
  void RecordCountWave() {
    if (Ready()) count_waves_->Increment();
  }
  void RecordInsertWave() {
    if (Ready()) insert_waves_->Increment();
  }
  /// Requests that were answered by another request's wave.
  void RecordCoalesced(uint64_t n) {
    if (Ready() && n > 0) coalesced_->Increment(n);
  }
  void RecordInsertInvalidation() {
    if (Ready()) invalidations_insert_->Increment();
  }
  void RecordFaultInvalidation(uint64_t n) {
    if (Ready() && n > 0) invalidations_fault_->Increment(n);
  }
  void RecordSignalInvalidation() {
    if (Ready()) invalidations_signal_->Increment();
  }
  /// The probe budget the tuner is currently serving with (0 = backend
  /// default, tuner inactive).
  void RecordLim(int lim) {
    if (Ready()) lim_->Set(static_cast<double>(lim));
  }

 private:
  bool Ready() {
    if (registry_ == nullptr) return false;
    if (!interned_) Intern();
    return true;
  }

  void Intern() {
    const MetricLabels base = {{"geometry", geometry_},
                               {"estimator", estimator_}};
    auto with = [&](const char* key, const char* value) {
      MetricLabels labels = base;
      labels.emplace_back(key, value);
      return labels;
    };
    count_requests_ =
        registry_->GetCounter("dhs_serving_requests_total", with("op", "count"));
    insert_requests_ = registry_->GetCounter("dhs_serving_requests_total",
                                             with("op", "insert"));
    count_waves_ =
        registry_->GetCounter("dhs_serving_waves_total", with("op", "count"));
    insert_waves_ =
        registry_->GetCounter("dhs_serving_waves_total", with("op", "insert"));
    coalesced_ = registry_->GetCounter("dhs_serving_coalesced_total", base);
    invalidations_insert_ =
        registry_->GetCounter("dhs_serving_frontier_invalidations_total",
                              with("reason", "insert"));
    invalidations_fault_ =
        registry_->GetCounter("dhs_serving_frontier_invalidations_total",
                              with("reason", "fault"));
    invalidations_signal_ =
        registry_->GetCounter("dhs_serving_frontier_invalidations_total",
                              with("reason", "signal"));
    lim_ = registry_->GetGauge("dhs_serving_lim", base);
    interned_ = true;
  }

  MetricsRegistry* registry_ = nullptr;
  std::string geometry_;
  std::string estimator_;
  bool interned_ = false;

  Counter* count_requests_ = nullptr;
  Counter* insert_requests_ = nullptr;
  Counter* count_waves_ = nullptr;
  Counter* insert_waves_ = nullptr;
  Counter* coalesced_ = nullptr;
  Counter* invalidations_insert_ = nullptr;
  Counter* invalidations_fault_ = nullptr;
  Counter* invalidations_signal_ = nullptr;
  Gauge* lim_ = nullptr;
};

}  // namespace dhs

#endif  // DHS_OBS_SERVING_METRICS_H_
