// Per-frame byte metrics for the wire transports.
//
// The paper's cost model (§5.2) counts payload bytes and excludes
// protocol headers; MessageStats therefore charges only the accounted
// payload of each frame (dht/wire.h). This helper is the other half of
// the ledger: full wire bytes per frame type, so the header/envelope
// overhead the cost model ignores is still visible in the metrics
// export. Series:
//
//   dht_wire_frames_total{frame=..., transport=...}
//   dht_wire_bytes_total{frame=..., transport=...}          (full frames)
//   dht_wire_payload_bytes_total{frame=..., transport=...}  (accounted)
//
// The obs layer sits below the dht layer in the include DAG, so frame
// types arrive as stable label strings (dht FrameTypeName), never as
// dht enums.

#ifndef DHS_OBS_WIRE_METRICS_H_
#define DHS_OBS_WIRE_METRICS_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace dhs {

/// Interns the per-frame-type series of one transport lazily and fans
/// each Record into the three counters. Null registry → every call is
/// a no-op (metrics are opt-in everywhere in the simulator).
class WireMetrics {
 public:
  WireMetrics() = default;
  WireMetrics(MetricsRegistry* registry, std::string transport)
      : registry_(registry), transport_(std::move(transport)) {}

  /// Re-points the helper (transports attach metrics after
  /// construction, mirroring DhtNetwork::AttachMetrics).
  void Attach(MetricsRegistry* registry, std::string transport) {
    registry_ = registry;
    transport_ = std::move(transport);
    by_type_.clear();
  }

  /// Records one frame crossing the transport.
  void Record(std::string_view frame_type, size_t wire_bytes,
              size_t payload_bytes) {
    if (registry_ == nullptr) return;
    auto it = by_type_.find(frame_type);
    if (it == by_type_.end()) {
      const MetricLabels labels = {{"frame", std::string(frame_type)},
                                   {"transport", transport_}};
      Series series;
      series.frames = registry_->GetCounter("dht_wire_frames_total", labels);
      series.wire_bytes = registry_->GetCounter("dht_wire_bytes_total", labels);
      series.payload_bytes =
          registry_->GetCounter("dht_wire_payload_bytes_total", labels);
      it = by_type_.emplace(std::string(frame_type), series).first;
    }
    it->second.frames->Increment();
    it->second.wire_bytes->Increment(wire_bytes);
    it->second.payload_bytes->Increment(payload_bytes);
  }

 private:
  struct Series {
    Counter* frames = nullptr;
    Counter* wire_bytes = nullptr;
    Counter* payload_bytes = nullptr;
  };

  MetricsRegistry* registry_ = nullptr;
  std::string transport_;
  // Interned per frame-type label; transparent comparator so lookups
  // take string_view without allocating.
  std::map<std::string, Series, std::less<>> by_type_;
};

}  // namespace dhs

#endif  // DHS_OBS_WIRE_METRICS_H_
