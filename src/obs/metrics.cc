#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace dhs {
namespace {

std::string RenderDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void WriteEscaped(std::ostream& os, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      bucket_counts_(upper_bounds_.size() + 1, 0) {
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

void Histogram::Observe(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  bucket_counts_[static_cast<size_t>(it - upper_bounds_.begin())] += 1;
  count_ += 1;
  sum_ += value;
}

std::string MetricsRegistry::MakeKey(std::string_view name,
                                     const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  if (!sorted.empty()) {
    key += '{';
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) key += ',';
      key += sorted[i].first;
      key += '=';
      key += sorted[i].second;
    }
    key += '}';
  }
  return key;
}

MetricsRegistry::Series* MetricsRegistry::Intern(
    std::string_view name, const MetricLabels& labels, Kind kind,
    std::vector<double> upper_bounds) {
  std::string key = MakeKey(name, labels);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series series;
    series.kind = kind;
    if (kind == Kind::kHistogram) {
      series.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    }
    it = series_.emplace(std::move(key), std::move(series)).first;
  } else {
    CHECK(it->second.kind == kind)
        << "metric series " << it->first
        << " already interned as a different instrument type";
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const MetricLabels& labels) {
  return &Intern(name, labels, Kind::kCounter, {})->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const MetricLabels& labels) {
  return &Intern(name, labels, Kind::kGauge, {})->gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds,
                                         const MetricLabels& labels) {
  return Intern(name, labels, Kind::kHistogram, std::move(upper_bounds))
      ->histogram.get();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{";
  bool first = true;
  for (const auto& [key, series] : series_) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"";
    WriteEscaped(os, key);
    os << "\":";
    switch (series.kind) {
      case Kind::kCounter:
        os << "{\"type\":\"counter\",\"value\":" << series.counter.value()
           << "}";
        break;
      case Kind::kGauge:
        os << "{\"type\":\"gauge\",\"value\":"
           << RenderDouble(series.gauge.value()) << "}";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *series.histogram;
        os << "{\"type\":\"histogram\",\"count\":" << h.count()
           << ",\"sum\":" << RenderDouble(h.sum()) << ",\"bounds\":[";
        for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
          if (i > 0) os << ",";
          os << RenderDouble(h.upper_bounds()[i]);
        }
        os << "],\"buckets\":[";
        for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i > 0) os << ",";
          os << h.bucket_counts()[i];
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n}\n";
}

}  // namespace dhs
