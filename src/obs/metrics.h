// Aggregate metrics for the simulator (the observability layer's
// counter side; obs/trace.h is the per-operation side).
//
// A MetricsRegistry holds named instruments — monotonically increasing
// counters, last-value gauges, and fixed-bucket histograms — each
// distinguished by a sorted label set ({geometry=chord, op=count,
// estimator=sll}). Instruments live for the registry's lifetime: a
// Get* call interns the (name, labels) series and returns a stable
// pointer, so hot paths pay the map lookup once at attach time and a
// single add per event afterwards.
//
// Naming scheme (see DESIGN.md "Observability"): snake_case metric
// names namespaced by subsystem — `dht_lookups_total`,
// `dht_lookup_hops`, `dhs_op_bytes` — with `_total` reserved for
// counters, following the Prometheus convention. Labels identify the
// series, never the event: geometry, estimator, op, fault kind.
//
// Export is a single deterministic JSON document: series sorted by
// interned key, doubles rendered with %.17g, no timestamps — two runs
// of the same seeded scenario dump identical bytes.
//
// NOTE the name collision this module deliberately avoids: the paper
// (and src/dhs/metrics.h) uses "metric" for a *counted attribute* — a
// thing whose cardinality the DHS estimates. Operational telemetry
// therefore lives under src/obs/, not src/dhs/.

#ifndef DHS_OBS_METRICS_H_
#define DHS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace dhs {

/// Label set for one series. Order-insensitive: the registry sorts by
/// key when interning.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-written value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: cumulative-style observation counts per
/// upper bound plus an implicit +Inf bucket, with count and sum.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; the +Inf bucket is
  /// implicit (bucket_counts() has upper_bounds.size() + 1 entries).
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket (non-cumulative) observation counts; last entry is +Inf.
  const std::vector<uint64_t>& bucket_counts() const { return bucket_counts_; }

 private:
  std::vector<double> upper_bounds_;
  std::vector<uint64_t> bucket_counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Owns all instruments. Single-threaded, like everything else in the
/// simulator core.
class MetricsRegistry : private ThreadHostile {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns (or finds) the series and returns its instrument. The
  /// pointer is stable for the registry's lifetime. CHECK-fails if the
  /// same (name, labels) series was interned as a different instrument
  /// type.
  Counter* GetCounter(std::string_view name, const MetricLabels& labels = {});
  Gauge* GetGauge(std::string_view name, const MetricLabels& labels = {});
  /// `upper_bounds` only applies on first intern; later calls return
  /// the existing histogram regardless.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds,
                          const MetricLabels& labels = {});

  size_t NumSeries() const { return series_.size(); }

  /// Deterministic JSON dump: an object mapping interned series keys
  /// (`name{k=v,...}`, labels sorted) to per-type payloads, keys in
  /// sorted order.
  void WriteJson(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Kind kind;
    // Exactly one is populated, per kind. unique_ptr-free: map nodes
    // are stable, and the variants are small.
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Canonical series key: name{k1=v1,k2=v2} with labels sorted by key
  /// (bare name when unlabeled).
  static std::string MakeKey(std::string_view name,
                             const MetricLabels& labels);

  Series* Intern(std::string_view name, const MetricLabels& labels, Kind kind,
                 std::vector<double> upper_bounds);

  std::map<std::string, Series> series_;
};

}  // namespace dhs

#endif  // DHS_OBS_METRICS_H_
