// Per-operation tracing for the simulator (the observability layer's
// span side; obs/metrics.h is the aggregate side).
//
// A Tracer turns every DHS operation into an attributable tree of
// spans: client ops (insert / insert_batch / count) open a root span,
// the network primitives they issue (lookup, direct_hop, put, get) open
// child spans, and individual routing hops, fault injections and
// retries land as instant events inside whichever span is open. Every
// span snapshots the network's MessageStats at begin and end, so each
// span carries the exact message/hop/byte delta it caused — and because
// the simulator is single-threaded, sibling spans never overlap in
// time, which gives the reconciliation invariant the test suite pins:
//
//   Σ (root-span MessageStats deltas) == global MessageStats delta,
//
// exactly, including faulted messages (1 message, 0 hops / 0 bytes).
//
// Determinism rules (tests/obs/golden_trace_test.cc relies on these):
// timestamps come from the overlay's *virtual clock* — never the wall
// clock — event ordering is the single global sequence counter, and
// span ids are densely allocated from 1. Two runs of the same seeded
// scenario therefore export byte-identical traces.
//
// Cost when disabled: call sites guard on `tracer == nullptr ||
// !tracer->enabled()` (one predictable branch, see ScopedSpan), so the
// traced-off hot path performs no allocation and records no event
// (bench/bench_obs_overhead.cc measures this; tests/obs/overhead_test.cc
// asserts the zero-allocation / zero-event contract).
//
// Export: Chrome trace-event JSON (chrome://tracing, Perfetto) and a
// line-per-event JSONL stream for ad-hoc tooling. Both are rendered
// from the same in-memory event list in sequence order.
//
// Like DhtNetwork itself, a Tracer is single-threaded state: attach one
// tracer to one network and use both from one thread only.

#ifndef DHS_OBS_TRACE_H_
#define DHS_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "dht/stats.h"

namespace dhs {

/// One key/value annotation on a span or instant event. Values are
/// pre-rendered to their JSON token at construction (digits for
/// numbers, unescaped text for strings), so the export pass is a pure
/// serialization walk.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = false;  // true: JSON string (escaped on export)

  static TraceArg U64(std::string_view key, uint64_t value);
  static TraceArg I64(std::string_view key, int64_t value);
  static TraceArg F64(std::string_view key, double value);
  static TraceArg Str(std::string_view key, std::string_view value);
  static TraceArg Bool(std::string_view key, bool value);
};

/// A completed (or still-open) span. Ids are dense and start at 1;
/// parent 0 means root.
struct TraceSpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  uint64_t begin_tick = 0;
  uint64_t end_tick = 0;
  uint64_t begin_seq = 0;
  uint64_t end_seq = 0;
  bool open = false;
  /// Network MessageStats accrued strictly inside this span (snapshot
  /// difference; includes everything nested children accrued too).
  MessageStats delta;
  std::vector<TraceArg> args;
};

class Tracer : private ThreadHostile {
 public:
  Tracer() = default;

  /// Binds the stat and clock sources every span snapshots. Called by
  /// DhtNetwork::AttachTracer with its own counters; both pointers must
  /// outlive the tracer (or be re-Bound). Either may be nullptr, in
  /// which case deltas / timestamps read as zero. Must not be called
  /// while a span is open.
  void Bind(const MessageStats* stats, const uint64_t* clock);

  /// Tracers record by default; a disabled tracer is a null sink (every
  /// recording call returns immediately, no allocation).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // ---- Recording ---------------------------------------------------------

  /// Opens a span nested under the currently innermost open span.
  /// Returns its id (0 when disabled — EndSpan ignores 0).
  uint64_t BeginSpan(std::string_view name);

  /// Closes `id`, which must be the innermost open span (spans close in
  /// LIFO order; RAII via ScopedSpan guarantees this). No-op for id 0.
  void EndSpan(uint64_t id);

  /// Appends an annotation to the (open) span `id`. No-op for id 0.
  void AnnotateSpan(uint64_t id, TraceArg arg);

  /// Records an instant event inside the innermost open span (or at the
  /// root when none is open).
  void Instant(std::string_view name, std::vector<TraceArg> args = {});

  // ---- Introspection (tests, reconciliation) -----------------------------

  /// All spans, indexed by id - 1, in creation order. Open spans have
  /// open == true and undefined end fields.
  const std::vector<TraceSpanRecord>& spans() const { return spans_; }

  /// Total recorded events (span begins + ends + instants).
  uint64_t NumEvents() const { return seq_; }

  /// Number of instant events recorded.
  size_t NumInstants() const { return instants_.size(); }

  /// Depth of the open-span stack (0 between operations).
  size_t OpenDepth() const { return stack_.size(); }

  /// Sum of MessageStats deltas over all *closed root* spans. Because
  /// the simulator is single-threaded, root spans never overlap, so
  /// this equals the global stats delta whenever every charged message
  /// was issued inside some traced operation.
  MessageStats RootSpanTotal() const;

  /// Drops all recorded spans and events (sequence and ids restart).
  /// Must not be called while a span is open.
  void Clear();

  // ---- Export ------------------------------------------------------------

  /// Chrome trace-event JSON: one B/E pair per span, one "i" event per
  /// instant, in global sequence order. ts is the virtual clock; the
  /// sequence number rides in args.seq so zero-duration events keep a
  /// total order. End events carry the span's MessageStats delta.
  void WriteChromeTrace(std::ostream& os) const;

  /// One JSON object per line per event, same order and fields.
  void WriteJsonl(std::ostream& os) const;

 private:
  struct InstantRecord {
    uint64_t seq = 0;
    uint64_t tick = 0;
    uint64_t span = 0;  // innermost open span at record time (0 = none)
    std::string name;
    std::vector<TraceArg> args;
  };

  uint64_t NowTick() const { return clock_ == nullptr ? 0 : *clock_; }
  MessageStats StatsSnapshot() const {
    return stats_ == nullptr ? MessageStats{} : *stats_;
  }

  /// Emits one event (merged span-begin / instant / span-end stream) to
  /// `os`; `chrome` selects the trace-event rendering over the JSONL one.
  void WriteEvents(std::ostream& os, bool chrome, const char* separator) const;

  bool enabled_ = true;
  const MessageStats* stats_ = nullptr;
  const uint64_t* clock_ = nullptr;
  uint64_t seq_ = 0;  // next global event sequence number

  std::vector<TraceSpanRecord> spans_;      // by id - 1
  std::vector<MessageStats> begin_stats_;   // parallel to spans_
  std::vector<InstantRecord> instants_;
  std::vector<uint64_t> stack_;  // open span ids, innermost last
};

/// RAII span guard with the null-sink branch inlined: when `tracer` is
/// null or disabled, construction is a branch and nothing else — no
/// virtual call, no allocation, no event.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        id_(tracer_ != nullptr ? tracer_->BeginSpan(name) : 0) {}

  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when the span is actually recording; guard any argument
  /// construction on this so the disabled path stays allocation-free.
  bool active() const { return tracer_ != nullptr; }

  /// The recording tracer, or nullptr when inactive.
  Tracer* tracer() const { return tracer_; }
  uint64_t id() const { return id_; }

  /// Annotates this span (no-op when inactive). Prefer guarding arg
  /// construction with active() when the value itself is costly.
  void Arg(TraceArg arg) {
    if (tracer_ != nullptr) tracer_->AnnotateSpan(id_, std::move(arg));
  }

 private:
  Tracer* tracer_;
  uint64_t id_;
};

}  // namespace dhs

#endif  // DHS_OBS_TRACE_H_
