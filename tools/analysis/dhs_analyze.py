#!/usr/bin/env python3
"""dhs-analyze: AST-accurate static-analysis suite for the DHS tree.

The repo's headline guarantee is byte-identical determinism of
fixed-seed worlds across shard counts and adversarial interleavings.
tools/lint/concurrency_lint.py polices the textual half of that
discipline (raw std:: threading, unnamed mutexes); this suite enforces
the parts a line-regex cannot see — typedefs, class structure, function
flow, the include DAG — by parsing every file into a structural model
and running five checker families over the whole-project view:

  layering             The include DAG is codified:
                         common -> hashing -> sketch -> dht -> dhs
                         -> {histogram, queryopt, baselines},
                       relation sits beside sketch (common+hashing
                       only), and obs is importable from dht/dhs but
                       itself imports only common (dht/stats.h is the
                       one codified exception: it is the obs-facing
                       MessageStats interface and is assigned to the
                       obs layer). Both direct edges (layer-dep) and
                       violations reachable only transitively through
                       project headers (layer-transitive) fail.

  determinism          det-unordered-iter   iteration over a
                       pointer-keyed std::unordered_map/set (resolved
                       through using/typedef aliases): pointer values
                       vary run to run, so iteration order does too.
                       det-wallclock        *_clock::now(), time(),
                       gettimeofday(), clock_gettime() outside bench/
                       and src/common/ — simulator code runs on the
                       virtual clock.
                       det-rng              std::random_device, rand,
                       srand anywhere; unseeded construction of a
                       standard <random> engine. All randomness flows
                       from the seeded common/random.h Rng.
                       det-float-accum      += / -= on a float/double
                       accumulator declared outside a loop that ranges
                       over an unordered container: the sum depends on
                       hash-table iteration order. Accumulating into a
                       slot indexed by the loop variable is exact
                       per-key and allowed.

  lock discipline      lock-unguarded-member   a class that owns a
                       dhs::Mutex must annotate every sibling data
                       member GUARDED_BY/PT_GUARDED_BY (const members,
                       atomics, Mutex/CondVar members and statics are
                       exempt).
                       lock-blocking-call      calling a blocking
                       operation (CondVar::Wait on a *different*
                       mutex, ThreadPool::Submit/Wait,
                       ShardPool::Post/Barrier/RunRound, or any project
                       function that transitively does) while a Mutex
                       is held (MutexLock scope or Lock()/Unlock()
                       span): the held lock turns a wait into a
                       potential deadlock and serializes the pool.

  StatusOr flow        statusor-unchecked      .value(), operator* or
                       operator-> on a StatusOr-typed local/parameter
                       with no dominating x.ok() / CHECK_OK(x) /
                       ASSERT_OK(x) earlier in the same function, and
                       .value() chained directly onto a
                       StatusOr-returning call (a temporary can never
                       be checked).

  serialization        serial-raw-bytes        memcpy/memmove or a
                       reinterpret_cast to a multi-byte integer type
                       inside src/sketch/ or src/dht/: byte-level
                       codec work must route through the
                       common/bit_util.h load/store helpers so the
                       wire format stays endian-explicit and auditable
                       in one place.

Frontends
---------
Type resolution uses the best frontend available:

  * clang: when the clang-18 Python bindings (python3-clang-18 /
    libclang) are importable, every TU in compile_commands.json is
    parsed with libclang and the alias map, class members (with
    guarded_by attributes), and function return types are taken from
    the real AST — canonical types, macros expanded. CI installs the
    bindings; see .github/workflows/ci.yml (analyze job).
  * tokens: a built-in C++ lexer + structural parser (comments,
    strings, raw strings, preprocessor handled exactly; classes,
    members, function bodies, using/typedef aliases recovered
    structurally). Always available; the fixture self-tests pin its
    behaviour. The clang frontend *refines* the token model — every
    checker runs on the same project model either way, so results
    degrade gracefully rather than diverge.

--frontend=auto (default) uses clang when importable, else tokens.

Waivers
-------
A finding on line L is waived when line L or L-1 carries a comment

    dhs-analyze: allow(<rule>)            (one or more, comma-separated)

`det-lint: allow(<rule>)` is accepted for the same rule ids so call
sites migrated from tools/lint/concurrency_lint.py keep working. Waive
sparingly and justify on the same comment.

Baseline
--------
--baseline FILE (default tools/analysis/baseline.txt when present)
suppresses known findings by (path, rule, fingerprint); fingerprints
hash the message, not the line, so unrelated edits do not churn the
file. Entries that no longer match any finding are reported as
stale-baseline findings — a baseline never silently shrinks the
enforced surface. Regenerate with --write-baseline; the file is sorted
by path so diffs review cleanly.

Exit status: 0 clean, 1 findings (or stale baseline entries), 2 usage.
"""

import argparse
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Configuration: rules, layers, path policy
# ---------------------------------------------------------------------------

RULES = {
    "layer-dep": "include edge violates the codified layer DAG",
    "layer-transitive": "layer violation reachable through project headers",
    "det-unordered-iter": "iteration over pointer-keyed unordered container",
    "det-wallclock": "wall-clock read outside bench/ and src/common/",
    "det-rng": "nondeterministic randomness source",
    "det-float-accum": "order-sensitive float accumulation over unordered "
                       "container",
    "lock-unguarded-member": "sibling of a Mutex member lacks GUARDED_BY",
    "lock-blocking-call": "blocking call while holding a Mutex",
    "statusor-unchecked": "StatusOr access not dominated by an ok() check",
    "serial-raw-bytes": "raw multi-byte codec op outside bit_util helpers",
    "stale-baseline": "baseline entry matches no current finding",
}

# Module layering. module_of() maps a path to a module via its first two
# components ("src/common/..." -> common; tools/bench/tests/examples ->
# app). LAYER_ALLOWED[m] is the set of modules files in m may include
# from (always includes m itself). app code may include anything.
LAYER_ALLOWED = {
    "common": set(),
    "hashing": {"common"},
    "sketch": {"common", "hashing"},
    "obs": {"common"},
    "dht": {"common", "hashing", "obs"},
    "dhs": {"common", "hashing", "sketch", "obs", "dht"},
    "relation": {"common", "hashing"},
    "histogram": {"common", "hashing", "sketch", "obs", "dht", "dhs",
                  "relation"},
    "queryopt": {"common", "hashing", "sketch", "obs", "dht", "dhs",
                 "relation", "histogram"},
    "baselines": {"common", "hashing", "sketch", "obs", "dht", "dhs",
                  "relation"},
}

# Per-file layer overrides: dht/stats.h is MessageStats — the snapshot
# interface the obs layer consumes. It includes only common/ and lives
# in dht/ for historical reasons; codifying it as obs is what makes the
# obs <-> dht relationship a DAG (obs/trace.h includes it, dht includes
# obs). See DESIGN.md "Static analysis".
LAYER_FILE_OVERRIDES = {
    "src/dht/stats.h": "obs",
}

WALLCLOCK_EXEMPT_PREFIXES = ("bench/", "src/common/")
SERIAL_PREFIXES = ("src/sketch/", "src/dht/")
SERIAL_EXEMPT = {"src/common/bit_util.h"}

DEFAULT_SCAN_DIRS = ("src", "tools", "bench")
EXTENSIONS = (".h", ".cc")

WAIVER_RE = re.compile(
    r"(?:dhs-analyze|det-lint):\s*allow\(([a-zA-Z0-9_,\s-]+)\)")

UNORDERED_CONTAINERS = ("unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset")
STD_RNG_ENGINES = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
    "ranlux48_base", "knuth_b",
}
CLOCK_NAMES = {"steady_clock", "system_clock", "high_resolution_clock"}
MULTIBYTE_INT_TOKENS = {
    "uint16_t", "uint32_t", "uint64_t", "int16_t", "int32_t", "int64_t",
    "size_t", "short", "long", "wchar_t", "char16_t", "char32_t",
}

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

PUNCT_3 = ("<<=", ">>=", "...", "->*")
PUNCT_2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")

ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
ID_CONT = ID_START | set("0123456789")


@dataclass
class Token:
    kind: str  # id | num | str | chr | punct
    text: str
    line: int

    def __repr__(self):
        return f"{self.text}@{self.line}"


class Lexed:
    """Token stream plus the per-line comment text (for waiver scan)
    and the #include directives of one file."""

    def __init__(self):
        self.tokens = []
        self.comments = {}  # line -> accumulated comment text
        self.includes = []  # (line, target, is_system)


def lex(text):
    """C++ lexer: exact comment/string/char/raw-string/preprocessor
    handling, token stream for everything else."""
    out = Lexed()
    i, n, line = 0, len(text), 1
    tokens = out.tokens
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if text.startswith("//", i):
            end = text.find("\n", i)
            if end < 0:
                end = n
            out.comments[line] = out.comments.get(line, "") + text[i:end]
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                end = n
            else:
                end += 2
            for off, chunk in enumerate(text[i:end].split("\n")):
                out.comments[line + off] = (
                    out.comments.get(line + off, "") + chunk)
            line += text.count("\n", i, end)
            i = end
            continue
        # Preprocessor directive: consumed whole (with continuations);
        # #include targets are recorded.
        if c == "#" and _at_line_start(text, i):
            j = i
            while j < n:
                eol = text.find("\n", j)
                if eol < 0:
                    eol = n
                if text[j:eol].rstrip().endswith("\\"):
                    j = eol + 1
                else:
                    break
            directive = text[i:eol if eol >= 0 else n]
            m = re.match(r'#\s*include\s*(["<])([^">]+)[">]', directive)
            if m:
                out.includes.append((line, m.group(2), m.group(1) == "<"))
            line += directive.count("\n")
            i = i + len(directive)
            continue
        # Raw strings.
        if c == "R" and text.startswith('R"', i):
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                delim = ")" + m.group(1) + '"'
                end = text.find(delim, i + m.end())
                if end < 0:
                    end = n
                else:
                    end += len(delim)
                tokens.append(Token("str", text[i:end], line))
                line += text.count("\n", i, end)
                i = end
                continue
        # Strings / chars (with escapes).
        if c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            tokens.append(Token("str" if c == '"' else "chr",
                                text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        # Identifiers (string prefixes like u8"..." fold into id + str).
        if c in ID_START:
            j = i + 1
            while j < n and text[j] in ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Numbers.
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j] in ID_CONT or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuation, longest match first.
        for p in PUNCT_3:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += 3
                break
        else:
            for p in PUNCT_2:
                if text.startswith(p, i):
                    tokens.append(Token("punct", p, line))
                    i += 2
                    break
            else:
                tokens.append(Token("punct", c, line))
                i += 1
    return out


def _at_line_start(text, i):
    j = i - 1
    while j >= 0 and text[j] in " \t":
        j -= 1
    return j < 0 or text[j] == "\n"


# ---------------------------------------------------------------------------
# Structural model
# ---------------------------------------------------------------------------

@dataclass
class Member:
    name: str
    type_text: str
    line: int
    guarded: bool = False          # GUARDED_BY / PT_GUARDED_BY present
    is_static: bool = False
    is_const_value: bool = False   # top-level const (exempt from guards)


@dataclass
class ClassModel:
    name: str
    line: int
    members: list = field(default_factory=list)


@dataclass
class FunctionModel:
    name: str                      # bare name
    qualifier: str                 # "Class" for Class::name, else ""
    line: int
    tokens: list = field(default_factory=list)   # body tokens, incl {}
    params: dict = field(default_factory=dict)   # name -> type text
    return_type: str = ""


@dataclass
class FileModel:
    rel: str
    lexed: Lexed = None
    aliases: dict = field(default_factory=dict)   # name -> type text
    classes: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    waivers: dict = field(default_factory=dict)   # line -> set(rules)


MEMBER_QUALIFIERS = {"mutable", "static", "constexpr", "inline", "volatile"}
NOT_MEMBER_LEAD = {"using", "typedef", "friend", "static_assert", "public",
                   "private", "protected", "template", "enum", "class",
                   "struct", "union", "operator", "explicit", "virtual",
                   "return", "if", "for", "while", "switch", "case",
                   "namespace"}
ANNOT_NAMES = {"GUARDED_BY", "PT_GUARDED_BY"}
FUNC_TAIL_KEYWORDS = {"const", "noexcept", "override", "final", "try",
                      "volatile", "&", "&&", ")"}


def token_text(tokens):
    return " ".join(t.text for t in tokens)


class TokenFrontend:
    """Builds FileModels from the built-in lexer + structural parser."""

    def parse(self, rel, text):
        fm = FileModel(rel=rel)
        fm.lexed = lex(text)
        for line, comment in fm.lexed.comments.items():
            for m in WAIVER_RE.finditer(comment):
                rules = {r.strip() for r in m.group(1).split(",")}
                fm.waivers.setdefault(line, set()).update(rules)
                fm.waivers.setdefault(line + 1, set()).update(rules)
        toks = fm.lexed.tokens
        self._scan_scope(fm, toks, 0, len(toks), None)
        return fm

    # -- scope walker -------------------------------------------------------

    def _scan_scope(self, fm, toks, i, end, cls):
        """Walks one brace scope: namespace / file / class body."""
        while i < end:
            t = toks[i]
            if t.kind == "id" and t.text == "namespace":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";", "="):
                    j += 1
                if j < end and toks[j].text == "{":
                    close = match_brace(toks, j)
                    self._scan_scope(fm, toks, j + 1, close, cls)
                    i = close + 1
                else:
                    i = skip_past(toks, j, ";")
                continue
            if t.kind == "id" and t.text in ("using", "typedef"):
                i = self._alias(fm, toks, i, end)
                continue
            if t.kind == "id" and t.text in ("class", "struct"):
                nxt = self._class_decl(fm, toks, i, end, cls)
                if nxt is not None:
                    i = nxt
                    continue
            if t.text == "{":
                i = match_brace(toks, i) + 1
                continue
            # Statement: up to ';' or a '{' at paren depth 0.
            stmt_start = i
            depth = 0
            while i < end:
                x = toks[i].text
                if x in "([":
                    depth += 1
                elif x in ")]":
                    depth -= 1
                elif depth == 0 and x == ";":
                    break
                elif depth == 0 and x == "{":
                    break
                i += 1
            if i >= end:
                break
            if toks[i].text == "{":
                prev = toks[i - 1].text if i > stmt_start else ""
                stmt = toks[stmt_start:i]
                if (prev in FUNC_TAIL_KEYWORDS or prev == ")"
                        or self._looks_like_function(stmt)):
                    close = match_brace(toks, i)
                    self._function(fm, toks, stmt_start, i, close, cls)
                    i = close + 1
                    continue
                # Brace initializer of a member/variable: fold the
                # braces into the statement and continue to ';'.
                close = match_brace(toks, i)
                i = skip_past(toks, close + 1, ";")
                if cls is not None:
                    self._member(fm, cls, toks[stmt_start:i - 1])
                continue
            # Plain ';'-terminated statement.
            if cls is not None:
                self._member(fm, cls, toks[stmt_start:i])
            i += 1

    def _alias(self, fm, toks, i, end):
        """using N = ...; / typedef ... N; -> alias entry."""
        kw = toks[i].text
        j = skip_past(toks, i, ";")
        stmt = toks[i:j - 1]
        if kw == "using" and len(stmt) >= 4 and stmt[2].text == "=":
            fm.aliases[stmt[1].text] = token_text(stmt[3:])
        elif kw == "typedef" and len(stmt) >= 3 and stmt[-1].kind == "id":
            fm.aliases[stmt[-1].text] = token_text(stmt[1:-1])
        return j

    def _class_decl(self, fm, toks, i, end, outer):
        """class/struct: returns next index, or None if not a class
        definition (elaborated type in a declaration)."""
        j = i + 1
        while j < end and toks[j].kind == "id" and toks[j].text in (
                "alignas", "final"):
            j += 1
        if j >= end or toks[j].kind != "id":
            return None
        name = toks[j].text
        j += 1
        # Skip base-clause / final up to '{' or ';'.
        depth = 0
        while j < end:
            x = toks[j].text
            if x in "(<[":
                depth += 1
            elif x in ")>]":
                depth -= 1
            elif depth == 0 and x in ("{", ";"):
                break
            j += 1
        if j >= end or toks[j].text == ";":
            return j + 1 if j < end else end  # forward declaration
        close = match_brace(toks, j)
        cls = ClassModel(name=name, line=toks[i].line)
        fm.classes.append(cls)
        self._scan_scope(fm, toks, j + 1, close, cls)
        return skip_past(toks, close + 1, ";")

    def _looks_like_function(self, stmt):
        """True when a brace-introduced statement is a function
        definition: a top-level '(' closed before the end (parameter
        list), tracked outside template angles."""
        angle = 0
        for k, t in enumerate(stmt):
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle = max(0, angle - 1)
            elif t.text == ">>":
                angle = max(0, angle - 2)
            elif t.text == "(" and angle == 0:
                return k > 0 and stmt[k - 1].kind == "id"
        return False

    def _function(self, fm, toks, head_start, brace, close, cls):
        """Records a function definition; head is [head_start, brace)."""
        head = toks[head_start:brace]
        # Find the parameter list: first top-level '(' outside angles
        # whose preceding token is an identifier (the function name).
        angle = 0
        open_paren = None
        for k, t in enumerate(head):
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle = max(0, angle - 1)
            elif t.text == ">>":
                angle = max(0, angle - 2)
            elif t.text == "(" and angle == 0:
                if k > 0 and head[k - 1].kind == "id":
                    open_paren = k
                break
        if open_paren is None:
            return
        name = head[open_paren - 1].text
        qualifier = ""
        if open_paren >= 3 and head[open_paren - 2].text == "::":
            qualifier = head[open_paren - 3].text
        elif cls is not None:
            qualifier = cls.name
        fn = FunctionModel(name=name, qualifier=qualifier,
                           line=head[0].line,
                           tokens=toks[brace:close + 1])
        fn.return_type = token_text(head[:max(open_paren - 1, 0)])
        # Parameters: split the (...) by top-level commas.
        pend = match_paren(head, open_paren)
        arg = []
        depth = 0
        for t in head[open_paren + 1:pend]:
            if t.text in "(<[{":
                depth += 1
            elif t.text in ")>]}":
                depth -= 1
            if t.text == "," and depth == 0:
                self._param(fn, arg)
                arg = []
            else:
                arg.append(t)
        self._param(fn, arg)
        fm.functions.append(fn)

    def _param(self, fn, arg):
        # Drop default argument.
        for k, t in enumerate(arg):
            if t.text == "=":
                arg = arg[:k]
                break
        if len(arg) >= 2 and arg[-1].kind == "id":
            fn.params[arg[-1].text] = token_text(arg[:-1])

    def _member(self, fm, cls, stmt):
        """Parses one class-scope ';'-terminated statement as a data
        member (or ignores it)."""
        if not stmt:
            return
        # Strip access labels glued in front ("public : int x").
        while len(stmt) >= 2 and stmt[0].text in (
                "public", "private", "protected") and stmt[1].text == ":":
            stmt = stmt[2:]
        if not stmt or stmt[0].kind != "id":
            return
        if stmt[0].text in NOT_MEMBER_LEAD:
            return
        if any(t.text == "operator" for t in stmt):
            return
        quals = set()
        k = 0
        while k < len(stmt) and stmt[k].text in MEMBER_QUALIFIERS:
            quals.add(stmt[k].text)
            k += 1
        body = stmt[k:]
        if not body:
            return
        # A top-level '(' before any '=' / annotation means a function
        # declaration (or macro call) — not a data member. Template
        # angles are tracked so std::function<void()> stays a member.
        angle = 0
        name_idx = None
        for j, t in enumerate(body):
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle = max(0, angle - 1)
            elif t.text == ">>":
                angle = max(0, angle - 2)
            elif angle == 0:
                if t.text == "(" and (
                        j == 0 or body[j - 1].kind != "id"
                        or body[j - 1].text in ANNOT_NAMES):
                    return
                if (t.kind == "id" and t.text in ANNOT_NAMES):
                    name_idx = j - 1
                    break
                if t.text == "(" and body[j - 1].kind == "id":
                    # id( ... : function decl unless this is the
                    # annotation itself (handled above).
                    return
                if t.text in ("=", "{", ";", "["):
                    name_idx = j - 1
                    break
                if t.text == ":" and j >= 1:  # bitfield
                    name_idx = j - 1
                    break
        else:
            name_idx = len(body) - 1
        if name_idx is None or name_idx < 1:
            return
        name_tok = body[name_idx]
        if name_tok.kind != "id":
            return
        type_toks = body[:name_idx]
        if not type_toks:
            return
        guarded = any(t.text in ANNOT_NAMES for t in body[name_idx:])
        type_text = token_text(type_toks)
        # Top-level const: const with no pointer, or const after the
        # last '*' (constant pointer / constant value either way).
        texts = [t.text for t in type_toks]
        is_const = ("const" in texts and "*" not in texts) or (
            "*" in texts and
            "const" in texts[len(texts) - 1 - texts[::-1].index("*"):])
        cls.members.append(Member(
            name=name_tok.text, type_text=type_text, line=name_tok.line,
            guarded=guarded, is_static="static" in quals or
            "constexpr" in quals,
            is_const_value=is_const or "constexpr" in quals))


def skip_past(toks, i, stop):
    """Index just past the next top-level `stop` token (brace/paren
    aware), or len(toks)."""
    depth = 0
    j = i
    while j < len(toks):
        x = toks[j].text
        if x in "([{":
            depth += 1
        elif x in ")]}":
            depth -= 1
        elif x == stop and depth <= 0:
            return j + 1
        j += 1
    return len(toks)


def match_brace(toks, i):
    """Index of the '}' matching toks[i] == '{' (len-1 if unbalanced)."""
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == "{":
            depth += 1
        elif toks[j].text == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1


def match_paren(toks, i):
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == "(":
            depth += 1
        elif toks[j].text == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1


# ---------------------------------------------------------------------------
# Optional libclang refinement
# ---------------------------------------------------------------------------

class ClangRefiner:
    """Refines the token-frontend model with real AST type information
    from the clang-18 Python bindings: canonical alias targets, field
    types and guarded_by attributes, and function return types. Import
    or parse failures degrade per-TU to the token model (a warning is
    printed once); checkers are frontend-agnostic."""

    def __init__(self, compdb_path):
        import clang.cindex as cindex  # raises ImportError when absent
        self.cindex = cindex
        self.index = cindex.Index.create()
        self.compdb = None
        if compdb_path and os.path.exists(compdb_path):
            self.compdb = cindex.CompilationDatabase.fromDirectory(
                os.path.dirname(os.path.abspath(compdb_path)))

    def args_for(self, abspath, root):
        args = ["-std=c++20", "-I", os.path.join(root, "src")]
        if self.compdb is not None:
            cmds = self.compdb.getCompileCommands(abspath)
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]  # drop argv0 + file
                args = [a for a in raw if a not in ("-c", "-o")
                        and not a.endswith(".o")]
        return args

    def refine(self, project, root):
        ck = self.cindex.CursorKind
        refined = 0
        for rel, fm in project.files.items():
            if not rel.endswith(".cc"):
                continue
            abspath = os.path.join(root, rel)
            try:
                tu = self.index.parse(abspath, self.args_for(abspath, root))
            except self.cindex.TranslationUnitLoadError:
                continue
            refined += 1
            for cur in tu.cursor.walk_preorder():
                try:
                    kind = cur.kind
                except ValueError:
                    continue
                if kind in (ck.TYPEDEF_DECL, ck.TYPE_ALIAS_DECL):
                    under = cur.underlying_typedef_type
                    if under is not None:
                        project.aliases.setdefault(
                            cur.spelling,
                            under.get_canonical().spelling)
                elif kind == ck.FIELD_DECL:
                    parent = cur.semantic_parent
                    cls = parent.spelling if parent is not None else ""
                    project.field_types[(cls, cur.spelling)] = (
                        cur.type.get_canonical().spelling)
                elif kind in (ck.FUNCTION_DECL, ck.CXX_METHOD):
                    ret = cur.result_type.spelling
                    if "StatusOr<" in ret:
                        project.statusor_returners.add(cur.spelling)
        return refined


# ---------------------------------------------------------------------------
# Project model
# ---------------------------------------------------------------------------

class Project:
    def __init__(self, root, scan_dirs):
        self.root = root
        self.scan_dirs = scan_dirs
        self.files = {}             # rel -> FileModel
        self.aliases = {}           # merged alias map
        self.classes = {}           # name -> ClassModel (last wins)
        self.field_types = {}       # (class, member) -> type text
        self.statusor_returners = set()
        self.condvar_members = set()    # member names typed CondVar
        self.pool_typed = {}            # name -> "ThreadPool"|"ShardPool"
        self.functions = []             # (rel, FunctionModel)

    def load(self, frontend):
        for scan_dir in self.scan_dirs:
            top = os.path.join(self.root, scan_dir)
            if not os.path.isdir(top):
                continue
            for dirpath, dirnames, filenames in os.walk(top):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(EXTENSIONS):
                        continue
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, self.root).replace(
                        os.sep, "/")
                    with open(path, encoding="utf-8") as f:
                        text = f.read()
                    self.files[rel] = frontend.parse(rel, text)
        self._index()

    def _index(self):
        for rel, fm in self.files.items():
            self.aliases.update(fm.aliases)
            for cls in fm.classes:
                self.classes[cls.name] = cls
                for mem in cls.members:
                    self.field_types.setdefault(
                        (cls.name, mem.name), mem.type_text)
                    resolved = self.resolve_type(mem.type_text)
                    if re.search(r"\bCondVar\b", resolved):
                        self.condvar_members.add(mem.name)
                    for pool in ("ThreadPool", "ShardPool"):
                        if re.search(rf"\b{pool}\b", resolved):
                            self.pool_typed[mem.name] = pool
            for fn in fm.functions:
                self.functions.append((rel, fn))
                if "StatusOr" in self.resolve_type(fn.return_type):
                    self.statusor_returners.add(fn.name)

    def resolve_type(self, type_text, depth=0):
        """Expands using/typedef aliases inside a type string (token
        frontend); clang-refined entries are already canonical."""
        if depth >= 5 or not type_text:
            return type_text
        def sub(m):
            name = m.group(0)
            target = self.aliases.get(name)
            return target if target and target != name else name
        expanded = re.sub(r"[A-Za-z_]\w*", sub, type_text)
        if expanded == type_text:
            return expanded
        return self.resolve_type(expanded, depth + 1)

    def module_of(self, rel):
        if rel in LAYER_FILE_OVERRIDES:
            return LAYER_FILE_OVERRIDES[rel]
        parts = rel.split("/")
        if parts[0] == "src" and len(parts) >= 2:
            return parts[1]
        return "app"


# ---------------------------------------------------------------------------
# Findings, waivers, baseline
# ---------------------------------------------------------------------------

@dataclass
class Finding:
    rel: str
    line: int
    rule: str
    message: str

    @property
    def fingerprint(self):
        basis = f"{self.rule}|{self.rel}|{self.message}"
        return hashlib.sha1(basis.encode()).hexdigest()[:16]


class Reporter:
    def __init__(self, project):
        self.project = project
        self.findings = []
        self.waived = 0

    def report(self, rel, line, rule, message):
        fm = self.project.files.get(rel)
        if fm is not None and rule in fm.waivers.get(line, ()):
            self.waived += 1
            return
        self.findings.append(Finding(rel, line, rule, message))


def load_baseline(path):
    entries = {}
    if not path or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            raw = raw.rstrip("\n")
            if not raw or raw.startswith("#"):
                continue
            parts = raw.split("\t")
            if len(parts) < 3:
                continue
            entries[(parts[0], parts[1], parts[2])] = raw
    return entries


def write_baseline(path, findings):
    rows = sorted(
        (f.rel, f.rule, f.fingerprint, f.message) for f in findings)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# dhs-analyze suppression baseline, v1.\n")
        f.write("# One finding per line: path<TAB>rule<TAB>fingerprint"
                "<TAB>message.\n")
        f.write("# Sorted by path; regenerate with --write-baseline. "
                "Stale entries fail the run.\n")
        for row in rows:
            f.write("\t".join(row) + "\n")


# ---------------------------------------------------------------------------
# Checker: layering
# ---------------------------------------------------------------------------

def check_layering(project, rep):
    # Resolve project-relative includes to scanned/on-disk files.
    def resolve(inc):
        for cand in ("src/" + inc, inc):
            if cand in project.files or os.path.exists(
                    os.path.join(project.root, cand)):
                return cand
        return None

    edges = {}  # rel -> [(line, target_rel)]
    for rel, fm in project.files.items():
        targets = []
        for line, inc, is_system in fm.lexed.includes:
            if is_system:
                continue
            target = resolve(inc)
            if target is not None:
                targets.append((line, target))
        edges[rel] = targets

    def allowed(src_mod, dst_mod):
        if src_mod == "app" or src_mod == dst_mod:
            return True
        allow = LAYER_ALLOWED.get(src_mod)
        if allow is None:  # unknown module: only itself + common
            return dst_mod == "common"
        return dst_mod in allow

    # Direct edges.
    direct_bad = set()
    for rel, targets in edges.items():
        src_mod = project.module_of(rel)
        for line, target in targets:
            dst_mod = project.module_of(target)
            if not allowed(src_mod, dst_mod):
                direct_bad.add((rel, dst_mod))
                allow_list = ", ".join(
                    sorted(LAYER_ALLOWED.get(src_mod, set()))) or "nothing"
                rep.report(
                    rel, line, "layer-dep",
                    f"{src_mod} must not include {dst_mod} "
                    f"({target}); {src_mod} may include: {allow_list}")

    # Transitive closure through project headers: report the first
    # chain per (file, offending module) not already a direct edge.
    for rel in sorted(edges):
        src_mod = project.module_of(rel)
        if src_mod == "app":
            continue
        seen = {rel}
        # BFS keeping parent links for the chain.
        queue = [(target, rel) for _, target in edges.get(rel, [])]
        parents = {target: rel for _, target in edges.get(rel, [])}
        reported_mods = set()
        while queue:
            cur, par = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            dst_mod = project.module_of(cur)
            if (not allowed(src_mod, dst_mod)
                    and (rel, dst_mod) not in direct_bad
                    and dst_mod not in reported_mods):
                chain = [cur]
                node = par
                while node != rel and node in parents:
                    chain.append(node)
                    node = parents[node]
                chain.append(rel)
                chain.reverse()
                line = edges[rel][0][0] if edges[rel] else 1
                rep.report(
                    rel, line, "layer-transitive",
                    f"{src_mod} reaches {dst_mod} via "
                    f"{' -> '.join(chain)}")
                reported_mods.add(dst_mod)
            for _, nxt in edges.get(cur, []):
                if nxt not in seen:
                    parents.setdefault(nxt, cur)
                    queue.append((nxt, cur))


# ---------------------------------------------------------------------------
# Shared function-body helpers
# ---------------------------------------------------------------------------

def local_decls(project, fn):
    """Locals of a function body: name -> resolved type text. `auto x =
    f(...)` records the callee as 'auto:f'."""
    decls = {}
    toks = fn.tokens
    i = 0
    n = len(toks)
    while i < n:
        # Statement boundaries: after ; { }
        start = i
        depth = 0
        while i < n:
            x = toks[i].text
            if x in "([":
                depth += 1
            elif x in ")]":
                depth -= 1
            elif depth == 0 and x in (";", "{", "}"):
                break
            i += 1
        _scan_decl(project, toks[start:i], decls)
        # Range-for: "for ( decl : expr )" — the decl part has no ';'.
        i += 1
    return decls


def _scan_decl(project, stmt, decls):
    # Strip leading keywords that may precede a declaration.
    k = 0
    while k < len(stmt) and stmt[k].text in (
            "for", "(", "const", "constexpr", "static", "mutable"):
        k += 1
    body = stmt[k:]
    if len(body) < 2 or body[0].kind != "id":
        return
    if body[0].text in NOT_MEMBER_LEAD and body[0].text != "auto":
        return
    # Find "name" position: identifier followed by = : ; , ( { or end.
    angle = 0
    for j in range(1, len(body)):
        t = body[j]
        if t.text == "<":
            angle += 1
        elif t.text == ">":
            angle = max(0, angle - 1)
        elif t.text == ">>":
            angle = max(0, angle - 2)
        elif angle == 0 and t.kind == "id" and j + 1 <= len(body):
            nxt = body[j + 1].text if j + 1 < len(body) else ""
            if nxt in ("=", ":", "{", "(", ",", "") and (
                    body[j - 1].kind != "id"
                    or body[j - 1].text in ("auto", "&", "*")
                    or body[j - 1].kind == "punct"
                    or body[j - 1].text not in ("return",)):
                type_toks = body[:j]
                if not type_toks:
                    return
                type_text = token_text(type_toks)
                if type_text in ("return", "delete"):
                    return
                # Not a declaration: '(void) x' casts leave a stray ')',
                # and 'ns :: func(...)' calls leave a trailing '::'.
                if "(" in type_text or ")" in type_text \
                        or type_text.endswith("::"):
                    return
                if body[0].text == "auto" and nxt == "=":
                    # auto x = callee(...): record the callee name.
                    callee = ""
                    for q in range(j + 2, len(body)):
                        if body[q].text == "(" and body[q - 1].kind == "id":
                            callee = body[q - 1].text
                            break
                        if body[q].text in (";",):
                            break
                    decls[t.text] = f"auto:{callee}"
                else:
                    decls[t.text] = project.resolve_type(type_text)
                return
    return


def enclosing_class_members(project, fn):
    cls = project.classes.get(fn.qualifier)
    if cls is None:
        return {}
    return {m.name: project.resolve_type(m.type_text) for m in cls.members}


def is_pointer_keyed_unordered(type_text):
    for cont in UNORDERED_CONTAINERS:
        idx = type_text.find(cont + " <")
        alt = type_text.find(cont + "<")
        pos = idx if idx >= 0 else alt
        if pos < 0:
            continue
        lt = type_text.find("<", pos)
        depth = 0
        arg_end = len(type_text)
        first_arg = None
        j = lt
        while j < len(type_text):
            c = type_text[j]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    arg_end = j
                    break
            elif c == "," and depth == 1 and first_arg is None:
                first_arg = type_text[lt + 1:j]
            j += 1
        if first_arg is None:
            first_arg = type_text[lt + 1:arg_end]
        if "*" in first_arg:
            return True
    return False


def is_unordered(type_text):
    return any(cont + " <" in type_text or cont + "<" in type_text
               for cont in UNORDERED_CONTAINERS)


def is_float_type(type_text):
    return bool(re.search(r"\b(float|double|long double)\b", type_text))


# ---------------------------------------------------------------------------
# Checker: determinism
# ---------------------------------------------------------------------------

def check_determinism(project, rep):
    for rel, fn in project.functions:
        locals_ = local_decls(project, fn)
        members = enclosing_class_members(project, fn)

        def type_of(name):
            t = locals_.get(name) or fn.params.get(name) or \
                members.get(name) or ""
            if t.startswith("auto:"):
                return ""  # call result: container typing unknown
            return project.resolve_type(t)

        toks = fn.tokens
        n = len(toks)
        for i in range(n):
            t = toks[i]
            # ---- range-for over containers -------------------------------
            if t.text == "for" and i + 1 < n and toks[i + 1].text == "(":
                close = match_paren(toks, i + 1)
                header = toks[i + 2:close]
                colon = _range_for_colon(header)
                if colon is not None:
                    range_toks = header[colon + 1:]
                    range_name = _simple_receiver(range_toks)
                    rtype = type_of(range_name) if range_name else ""
                    if is_pointer_keyed_unordered(rtype):
                        rep.report(
                            rel, t.line, "det-unordered-iter",
                            f"iteration over pointer-keyed unordered "
                            f"container '{range_name}' "
                            f"({rtype.split('GUARDED_BY')[0].strip()}): "
                            f"iteration order follows pointer values")
                    if is_unordered(rtype):
                        _check_float_accum(
                            project, rep, rel, fn, toks, i, close,
                            header[:colon], range_name, type_of)

        _check_wallclock_rng(project, rep, rel, fn)


def _range_for_colon(header):
    depth = 0
    for k, t in enumerate(header):
        if t.text in "([{<":
            depth += 1
        elif t.text in ")]}>":
            depth -= 1
        elif t.text == ":" and depth <= 0:
            if k > 0 and header[k - 1].text != ":":  # not '::'
                if k + 1 < len(header) and header[k + 1].text != ":":
                    return k
    return None


def _simple_receiver(toks):
    """'x', 'this->x' or a trailing '.member_' chain -> base identifier
    of interest; calls / complex expressions -> ''."""
    ids = [t for t in toks if t.kind == "id"]
    if any(t.text == "(" for t in toks):
        return ""
    if len(ids) == 1:
        return ids[0].text
    if len(ids) == 2 and toks[0].text == "this":
        return ids[1].text
    return ""


def _check_float_accum(project, rep, rel, fn, toks, for_idx, close,
                       decl_toks, range_name, type_of):
    """Inside a range-for over an unordered container: flag compound
    assignment into a float accumulator declared outside the loop that
    is not indexed by the loop variable."""
    if close + 1 >= len(toks) or toks[close + 1].text != "{":
        # Braceless body: one statement, up to the next ';'.
        body_start = close + 1
        body_end = skip_past(toks, body_start, ";")
    else:
        body_start = close + 1
        body_end = match_brace(toks, body_start)
    loop_vars = {t.text for t in decl_toks if t.kind == "id"} - {
        "auto", "const", "&", "*"}
    i = body_start
    while i < body_end:
        t = toks[i]
        if t.text in ("+=", "-="):
            # Left-hand side: walk back over id/./->/[]/this.
            j = i - 1
            lhs = []
            depth = 0
            while j >= 0:
                x = toks[j].text
                if x == "]":
                    depth += 1
                elif x == "[":
                    depth -= 1
                    if depth < 0:
                        break
                elif depth == 0 and x in (";", "{", "}", ")", ","):
                    break
                lhs.append(toks[j])
                j -= 1
            lhs.reverse()
            lhs_ids = [t2.text for t2 in lhs if t2.kind == "id"]
            has_subscript = any(t2.text == "[" for t2 in lhs)
            indexed_by_loop = has_subscript and bool(
                set(lhs_ids) & loop_vars)
            if lhs_ids and not indexed_by_loop:
                base = lhs_ids[0] if lhs_ids[0] != "this" else (
                    lhs_ids[1] if len(lhs_ids) > 1 else "")
                if base and base not in loop_vars:
                    btype = type_of(base)
                    if is_float_type(btype) and not is_unordered(btype):
                        rep.report(
                            rel, t.line, "det-float-accum",
                            f"'{base}' ({btype}) accumulates inside a "
                            f"loop over unordered container "
                            f"'{range_name}': the float sum depends on "
                            f"hash iteration order; iterate a sorted "
                            f"copy or accumulate per-key")
        i += 1


def _check_wallclock_rng(project, rep, rel, fn):
    wallclock_ok = rel.startswith(WALLCLOCK_EXEMPT_PREFIXES)
    toks = fn.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        prev = toks[i - 1].text if i > 0 else ""
        nxt = toks[i + 1].text if i + 1 < n else ""
        # Wall clock.
        if (t.text in CLOCK_NAMES and nxt == "::"
                and i + 2 < n and toks[i + 2].text == "now"):
            if not wallclock_ok:
                rep.report(rel, t.line, "det-wallclock",
                           f"std::chrono::{t.text}::now() — simulator "
                           f"code runs on the virtual clock")
        elif (t.text in ("time", "gettimeofday", "clock_gettime")
              and nxt == "(" and prev not in (".", "->", "::")):
            if not wallclock_ok:
                rep.report(rel, t.line, "det-wallclock",
                           f"{t.text}() reads the wall clock — "
                           f"simulator code runs on the virtual clock")
        # RNG.
        elif t.text == "random_device":
            rep.report(rel, t.line, "det-rng",
                       "std::random_device is nondeterministic by "
                       "design — all randomness flows from the seeded "
                       "common/random.h Rng")
        elif (t.text in ("rand", "srand") and nxt == "("
              and prev not in (".", "->", "::")):
            rep.report(rel, t.line, "det-rng",
                       f"{t.text}() uses hidden global state — use the "
                       f"seeded common/random.h Rng")
        elif t.text in STD_RNG_ENGINES and prev != "<" and nxt != "<":
            # Unseeded engine: "mt19937 g;" / "g{};" / "g();".
            if i + 1 < n and toks[i + 1].kind == "id":
                after = toks[i + 2].text if i + 2 < n else ""
                after2 = toks[i + 3].text if i + 3 < n else ""
                if after == ";" or (after in ("{", "(")
                                    and after2 in ("}", ")")):
                    rep.report(
                        rel, t.line, "det-rng",
                        f"std::{t.text} constructed without a seed — "
                        f"seed explicitly or use common/random.h Rng")


# ---------------------------------------------------------------------------
# Checker: lock discipline
# ---------------------------------------------------------------------------

def check_lock_members(project, rep):
    for rel, fm in project.files.items():
        if not rel.endswith(".h"):
            continue
        for cls in fm.classes:
            mutexes = [m for m in cls.members
                       if re.search(r"\bMutex\b", m.type_text)]
            if not mutexes:
                continue
            mu_names = ", ".join(m.name for m in mutexes)
            for m in cls.members:
                if m in mutexes or m.guarded or m.is_static \
                        or m.is_const_value:
                    continue
                resolved = project.resolve_type(m.type_text)
                if re.search(r"\b(CondVar|atomic|Mutex)\b", resolved):
                    continue
                rep.report(
                    rel, m.line, "lock-unguarded-member",
                    f"{cls.name}::{m.name} has no GUARDED_BY but sibling "
                    f"mutex {mu_names} exists — annotate, make it "
                    f"const/atomic, or waive with the synchronization "
                    f"story")


BLOCKING_POOL_METHODS = {
    "ThreadPool": {"Submit", "Wait"},
    "ShardPool": {"Post", "Barrier", "RunRound"},
}


def _function_key(fn):
    return f"{fn.qualifier}::{fn.name}" if fn.qualifier else fn.name


def build_blocking_closure(project):
    """Names of project functions that (transitively) block. Seeds:
    bodies containing CondVar .Wait or pool blocking methods on
    pool-typed receivers."""
    calls = {}      # function key -> set of called bare names
    blocking = set()
    for rel, fn in project.functions:
        key = _function_key(fn)
        locals_ = local_decls(project, fn)
        members = enclosing_class_members(project, fn)

        def rtype(name):
            t = locals_.get(name) or fn.params.get(name) or \
                members.get(name) or ""
            return "" if t.startswith("auto:") else project.resolve_type(t)

        called = calls.setdefault(key, set())
        toks = fn.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            if prev in (".", "->"):
                recv = toks[i - 2].text if i >= 2 else ""
                recv_type = rtype(recv)
                if t.text == "Wait" and (recv in project.condvar_members
                                         or "CondVar" in recv_type):
                    blocking.add(key)
                for pool, methods in BLOCKING_POOL_METHODS.items():
                    if t.text in methods and (
                            pool in recv_type
                            or project.pool_typed.get(recv) == pool):
                        blocking.add(key)
            else:
                called.add(t.text)
    # Propagate through the call graph by bare name.
    blocking_names = {k.split("::")[-1] for k in blocking}
    changed = True
    while changed:
        changed = False
        for key, called in calls.items():
            if key in blocking:
                continue
            if called & blocking_names:
                blocking.add(key)
                blocking_names.add(key.split("::")[-1])
                changed = True
    return blocking_names


def check_lock_blocking(project, rep, blocking_names):
    for rel, fn in project.functions:
        locals_ = local_decls(project, fn)
        members = enclosing_class_members(project, fn)

        def rtype(name):
            t = locals_.get(name) or fn.params.get(name) or \
                members.get(name) or ""
            return "" if t.startswith("auto:") else project.resolve_type(t)

        toks = fn.tokens
        n = len(toks)
        # Lock regions: list of (mutex_name, start_idx, end_idx).
        regions = []
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.text == "MutexLock"
                    and i + 2 < n and toks[i + 1].kind == "id"
                    and toks[i + 2].text in ("(", "{")):
                close = (match_paren(toks, i + 2)
                         if toks[i + 2].text == "(" else
                         match_brace(toks, i + 2))
                args = [x.text for x in toks[i + 3:close] if x.kind == "id"]
                mu = args[0] if args else "?"
                end = _enclosing_block_end(toks, i)
                regions.append((mu, close, end))
            elif (t.kind == "id" and t.text == "Lock" and i >= 2
                  and toks[i - 1].text in (".", "->")
                  and i + 1 < n and toks[i + 1].text == "("):
                mu = toks[i - 2].text
                if "Mutex" not in rtype(mu):
                    continue
                end = len(toks) - 1
                for j in range(i + 1, n - 2):
                    if (toks[j].text == mu and toks[j + 1].text in
                            (".", "->") and toks[j + 2].text == "Unlock"):
                        end = j
                        break
                regions.append((mu, i + 1, end))
        if not regions:
            continue
        for i, t in enumerate(toks):
            if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
                continue
            held = [mu for (mu, s, e) in regions if s < i < e]
            if not held:
                continue
            prev = toks[i - 1].text if i > 0 else ""
            if prev in (".", "->"):
                recv = toks[i - 2].text if i >= 2 else ""
                recv_type = rtype(recv)
                if t.text == "Wait" and (recv in project.condvar_members
                                         or "CondVar" in recv_type):
                    close = match_paren(toks, i + 1)
                    wait_args = [x.text for x in toks[i + 2:close]
                                 if x.kind == "id"]
                    wait_mu = wait_args[0] if wait_args else ""
                    offenders = [mu for mu in held if mu != wait_mu]
                    if offenders:
                        rep.report(
                            rel, t.line, "lock-blocking-call",
                            f"CondVar::Wait({wait_mu}) blocks while "
                            f"holding {', '.join(offenders)} — only the "
                            f"waited mutex is released during the wait")
                for pool, methods in BLOCKING_POOL_METHODS.items():
                    if t.text in methods and (
                            pool in recv_type
                            or project.pool_typed.get(recv) == pool):
                        rep.report(
                            rel, t.line, "lock-blocking-call",
                            f"{pool}::{t.text}() called while holding "
                            f"{', '.join(held)} — pool operations block "
                            f"and must not run under a lock")
            else:
                if (t.text in blocking_names
                        and t.text not in ("Lock", "Unlock", "TryLock")):
                    rep.report(
                        rel, t.line, "lock-blocking-call",
                        f"call to '{t.text}' (transitively blocking) "
                        f"while holding {', '.join(held)}")


def _enclosing_block_end(toks, i):
    """End index of the innermost '{' block containing token i."""
    depth = 0
    for j in range(i, -1, -1):
        if toks[j].text == "}":
            depth += 1
        elif toks[j].text == "{":
            if depth == 0:
                return match_brace(toks, j)
            depth -= 1
    return len(toks) - 1


# ---------------------------------------------------------------------------
# Checker: StatusOr flow
# ---------------------------------------------------------------------------

OK_ESTABLISHERS = ("CHECK_OK", "ASSERT_OK", "EXPECT_OK", "QCHECK_OK")


def check_statusor(project, rep):
    for rel, fn in project.functions:
        locals_ = local_decls(project, fn)
        tracked = {}
        for name, t in list(locals_.items()) + list(fn.params.items()):
            if t.startswith("auto:"):
                callee = t.split(":", 1)[1]
                if callee in project.statusor_returners:
                    tracked[name] = f"StatusOr (via {callee})"
            elif "StatusOr" in project.resolve_type(t):
                tracked[name] = project.resolve_type(t)
        toks = fn.tokens
        n = len(toks)
        if not tracked and not project.statusor_returners:
            continue
        # Establisher positions per var: x.ok() / CHECK_OK(x) etc.
        established = {}  # name -> first token index
        for i, t in enumerate(toks):
            if (t.text == "ok" and i >= 2 and toks[i - 1].text == "."
                    and toks[i - 2].kind == "id"
                    and i + 1 < n and toks[i + 1].text == "("):
                name = toks[i - 2].text
                established.setdefault(name, i)
            elif (t.text in OK_ESTABLISHERS and i + 1 < n
                  and toks[i + 1].text == "("):
                close = match_paren(toks, i + 1)
                for x in toks[i + 2:close]:
                    if x.kind == "id":
                        established.setdefault(x.text, i)
        # Uses.
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            # x.value() / x->... / *x on tracked vars.
            name = t.text
            if name in tracked:
                nxt = toks[i + 1].text if i + 1 < n else ""
                nxt2 = toks[i + 2].text if i + 2 < n else ""
                prev = toks[i - 1].text if i > 0 else ""
                use = None
                if nxt == "." and nxt2 == "value":
                    use = f"{name}.value()"
                elif nxt == "->":
                    use = f"{name}->"
                elif prev == "*" and _is_deref_context(toks, i - 1):
                    use = f"*{name}"
                if use is not None:
                    est = established.get(name)
                    if est is None or est > i:
                        rep.report(
                            rel, t.line, "statusor-unchecked",
                            f"{use} on {tracked[name]} with no earlier "
                            f"{name}.ok() / CHECK_OK({name}) in "
                            f"{_function_key(fn)} — check or CHECK_OK "
                            f"first")
            # f(...).value() on a StatusOr-returning call: a temporary
            # can never be checked.
            if (name == "value" and i >= 2 and toks[i - 1].text == "."
                    and toks[i - 2].text == ")"
                    and i + 1 < n and toks[i + 1].text == "("):
                open_idx = _match_paren_back(toks, i - 2)
                if open_idx is not None and open_idx >= 1 and \
                        toks[open_idx - 1].kind == "id":
                    callee = toks[open_idx - 1].text
                    if callee in project.statusor_returners:
                        rep.report(
                            rel, t.line, "statusor-unchecked",
                            f"{callee}(...).value() on a temporary "
                            f"StatusOr — bind it, check ok(), then "
                            f"move the value out")


def _is_deref_context(toks, star_idx):
    prev = toks[star_idx - 1] if star_idx > 0 else None
    if prev is None:
        return True
    if prev.kind in ("id", "num") or prev.text in (")", "]"):
        return False  # multiplication
    return True


def _match_paren_back(toks, close_idx):
    depth = 0
    for j in range(close_idx, -1, -1):
        if toks[j].text == ")":
            depth += 1
        elif toks[j].text == "(":
            depth -= 1
            if depth == 0:
                return j
    return None


# ---------------------------------------------------------------------------
# Checker: serialization safety
# ---------------------------------------------------------------------------

def check_serialization(project, rep):
    for rel, fn in project.functions:
        if not rel.startswith(SERIAL_PREFIXES) or rel in SERIAL_EXEMPT:
            continue
        toks = fn.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            nxt = toks[i + 1].text if i + 1 < n else ""
            if t.text in ("memcpy", "memmove") and nxt == "(":
                rep.report(
                    rel, t.line, "serial-raw-bytes",
                    f"{t.text}() in {rel.split('/')[1]} codec code — "
                    f"route multi-byte loads/stores through the "
                    f"common/bit_util.h helpers (LoadLE*/StoreLE*/"
                    f"AppendLE*) so endianness stays explicit")
            elif t.text == "reinterpret_cast" and nxt == "<":
                depth = 0
                target = []
                for j in range(i + 1, n):
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    else:
                        target.append(toks[j].text)
                if set(target) & MULTIBYTE_INT_TOKENS:
                    rep.report(
                        rel, t.line, "serial-raw-bytes",
                        f"reinterpret_cast<{' '.join(target)}...> of a "
                        f"multi-byte integer — type-punning bytes is "
                        f"endian- and alignment-unsafe; use the "
                        f"common/bit_util.h load/store helpers")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run(argv=None):
    parser = argparse.ArgumentParser(
        description="dhs-analyze: AST-accurate project checker suite",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--scan-dirs", default=",".join(DEFAULT_SCAN_DIRS),
                        help="comma-separated directories under root")
    parser.add_argument("--baseline", default=None,
                        help="suppression baseline file ('none' disables; "
                             "default tools/analysis/baseline.txt under "
                             "root when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline and "
                             "exit 0")
    parser.add_argument("--frontend", choices=("auto", "clang", "tokens"),
                        default="auto")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                             "build/compile_commands.json under root)")
    parser.add_argument("--json", default=None,
                        help="also write findings as JSON to this path")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule:22s} {RULES[rule]}")
        return 0

    root = os.path.abspath(args.root)
    scan_dirs = [d.strip() for d in args.scan_dirs.split(",") if d.strip()]
    project = Project(root, scan_dirs)
    project.load(TokenFrontend())

    frontend_used = "tokens"
    if args.frontend in ("auto", "clang"):
        compdb = args.compdb or os.path.join(
            root, "build", "compile_commands.json")
        try:
            refiner = ClangRefiner(compdb)
            refined = refiner.refine(project, root)
            frontend_used = f"clang ({refined} TUs refined)"
        except ImportError:
            if args.frontend == "clang":
                print("dhs-analyze: clang frontend requested but "
                      "clang.cindex is not importable (install "
                      "python3-clang-18); falling back to tokens",
                      file=sys.stderr)
        except Exception as err:  # pragma: no cover - environment-specific
            print(f"dhs-analyze: clang refinement failed ({err}); "
                  f"continuing with the token model", file=sys.stderr)

    rep = Reporter(project)
    check_layering(project, rep)
    check_determinism(project, rep)
    check_lock_members(project, rep)
    blocking = build_blocking_closure(project)
    check_lock_blocking(project, rep, blocking)
    check_statusor(project, rep)
    check_serialization(project, rep)

    if args.write_baseline:
        path = args.baseline or os.path.join(
            root, "tools", "analysis", "baseline.txt")
        write_baseline(path, rep.findings)
        print(f"dhs-analyze: wrote {len(rep.findings)} finding(s) to "
              f"{path}")
        return 0

    baseline_path = args.baseline
    if baseline_path is None:
        cand = os.path.join(root, "tools", "analysis", "baseline.txt")
        baseline_path = cand if os.path.exists(cand) else None
    elif baseline_path == "none":
        baseline_path = None
    baseline = load_baseline(baseline_path)

    matched_keys = set()
    visible = []
    for f in rep.findings:
        key = (f.rel, f.rule, f.fingerprint)
        if key in baseline:
            matched_keys.add(key)
        else:
            visible.append(f)
    for key in sorted(set(baseline) - matched_keys):
        visible.append(Finding(
            key[0], 0, "stale-baseline",
            f"baseline entry ({key[1]}, {key[2]}) matches no current "
            f"finding — remove it from {baseline_path}"))

    visible.sort(key=lambda f: (f.rel, f.line, f.rule, f.message))
    for f in visible:
        print(f"{f.rel}:{f.line}: {f.rule}: {f.message}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as jf:
            json.dump([{"path": f.rel, "line": f.line, "rule": f.rule,
                        "message": f.message,
                        "fingerprint": f.fingerprint}
                       for f in visible], jf, indent=2)
            jf.write("\n")

    per_rule = {}
    for f in visible:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{r}={c}" for r, c in sorted(per_rule.items()))
    suppressed = len(matched_keys)
    print(f"dhs-analyze [{frontend_used}]: {len(visible)} finding(s)"
          + (f" ({summary})" if summary else "")
          + (f", {suppressed} baselined" if suppressed else "")
          + (f", {rep.waived} waived" if rep.waived else "")
          + f" over {len(project.files)} files")
    return 1 if visible else 0


if __name__ == "__main__":
    sys.exit(run())
