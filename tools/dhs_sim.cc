// dhs_sim — interactive / scriptable driver for the DHS simulator.
//
// Reads simple commands from stdin (or a file piped in) and executes
// them against one overlay + one DhsClient, printing results and costs.
// Handy for exploring the system without writing C++:
//
//   $ ./tools/dhs_sim <<'EOF'
//   network chord 256
//   config m=128 k=24 lim=5
//   insert docs 50000
//   count docs
//   fail 25
//   count docs
//   stats
//   EOF
//
// Commands:
//   network <chord|kademlia> <nodes>     build the overlay (once)
//   config [m=..] [k=..] [lim=..] [replication=..] [shift=..] [ttl=..]
//          [estimator=sll|pcsa|hll]      create the DHS client
//   insert <metric-name> <n>             insert n distinct items
//   count <metric-name> [<name2> ...]    estimate cardinalities (one sweep)
//   fail <n>                             abruptly fail n random nodes
//   leave <n>                            gracefully remove n random nodes
//   join <n>                             add n random nodes
//   tick <n>                             advance the virtual clock
//   stats                                cumulative network statistics
//   loads                                per-node load percentiles
//   help                                 this text
//
// Flags:
//   --shards=<K>          run DHS ops, churn and ticks through the
//                         sharded execution engine (K ID-space shards
//                         on worker threads; K=1 runs it inline);
//                         fixed-seed runs are byte-identical across
//                         shard counts
//   --transport=<sim|loopback>
//                         backend the client's frames travel through:
//                         in-process simulator calls (default) or a
//                         real AF_UNIX socket pair (dht/loopback.h);
//                         both produce byte-identical output at a fixed
//                         seed. Incompatible with --shards (the engine
//                         moves batches, not per-frame traffic)
//   --trace-out=<path>    record per-operation spans; written as Chrome
//                         trace-event JSON at exit (or <path>.jsonl next
//                         to it when the path ends in .jsonl)
//   --metrics-out=<path>  dump the metrics registry as JSON at exit

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "dhs/client.h"
#include "dhs/front_door.h"
#include "dhs/metrics.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/loopback.h"
#include "dht/shard.h"
#include "hashing/hasher.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dhs {
namespace {

struct SimState {
  std::unique_ptr<DhtNetwork> network;
  std::unique_ptr<DhsClient> client;
  /// --shards=K: DHS ops, churn and ticks run through the sharded
  /// execution engine instead of the sequential client (K=1 runs the
  /// engine inline — the determinism reference). front depends on
  /// engine (declared after, destroyed first).
  bool use_engine = false;
  int shards = 1;
  /// --transport=loopback: route every client frame through a real
  /// AF_UNIX socket pair instead of in-process simulator calls.
  bool use_loopback = false;
  std::unique_ptr<ShardedNetwork> engine;
  std::unique_ptr<DhsFrontDoor> front;
  DhsConfig config;
  Rng rng{20260705};
  MixHasher item_hasher{0xd5};
  std::map<std::string, uint64_t> inserted;  // metric name -> items so far

  // Observability sinks, enabled by --trace-out / --metrics-out and
  // attached to every network the session builds.
  std::string trace_out;
  std::string metrics_out;
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<MetricsRegistry> metrics;
};

void PrintHelp() {
  std::printf(
      "commands: network <chord|kademlia> <nodes> | config k=v... | "
      "insert <metric> <n> | count <metric>... | fail <n> | leave <n> | "
      "join <n> | tick <n> | stats | loads | help | quit\n");
}

bool RequireNetwork(const SimState& state) {
  if (state.network == nullptr) {
    std::printf("error: run `network <chord|kademlia> <nodes>` first\n");
    return false;
  }
  return true;
}

bool RequireClient(SimState& state) {
  if (!RequireNetwork(state)) return false;
  if (state.client == nullptr) {
    auto client =
        state.use_loopback
            ? DhsClient::Create(
                  state.network.get(), state.config,
                  std::make_shared<LoopbackTransport>(state.network.get()))
            : DhsClient::Create(state.network.get(), state.config);
    if (!client.ok()) {
      std::printf("error: %s\n", client.status().ToString().c_str());
      return false;
    }
    state.client = std::make_unique<DhsClient>(std::move(client.value()));
  }
  if (state.use_engine && state.front == nullptr) {
    if (state.engine == nullptr) {
      state.engine = std::make_unique<ShardedNetwork>(state.network.get(),
                                                      state.shards);
    }
    auto front = DhsFrontDoor::Create(state.engine.get(), state.config);
    if (!front.ok()) {
      std::printf("error: %s\n", front.status().ToString().c_str());
      return false;
    }
    state.front = std::make_unique<DhsFrontDoor>(std::move(front.value()));
  }
  return true;
}

void CmdNetwork(SimState& state, std::istringstream& args) {
  std::string geometry;
  int nodes = 0;
  args >> geometry >> nodes;
  if (nodes <= 0 || (geometry != "chord" && geometry != "kademlia")) {
    std::printf("usage: network <chord|kademlia> <nodes>\n");
    return;
  }
  OverlayConfig config;
  config.hasher = "mix";
  if (geometry == "chord") {
    state.network = std::make_unique<ChordNetwork>(config);
  } else {
    state.network = std::make_unique<KademliaNetwork>(config);
  }
  // Bulk bootstrap: O(n log n) with no per-join migration work (the
  // network is empty), which is what makes 100k+-node worlds practical.
  std::vector<uint64_t> ids;
  while (ids.size() < static_cast<size_t>(nodes)) {
    ids.push_back(state.rng.Next());
    if (ids.size() == static_cast<size_t>(nodes)) {
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }
  }
  (void)state.network->BulkAddNodes(std::move(ids));
  if (state.tracer != nullptr) {
    state.network->AttachTracer(state.tracer.get());
  }
  if (state.metrics != nullptr) {
    state.network->AttachMetrics(state.metrics.get());
  }
  state.client.reset();
  state.front.reset();
  state.engine.reset();
  if (state.use_engine) {
    state.engine = std::make_unique<ShardedNetwork>(state.network.get(),
                                                    state.shards);
  }
  std::printf("%s overlay with %zu nodes%s\n",
              state.network->GeometryName(), state.network->NumNodes(),
              state.use_engine ? (" (" + std::to_string(state.shards) +
                                  " shards)").c_str()
                               : "");
}

void CmdConfig(SimState& state, std::istringstream& args) {
  std::string token;
  while (args >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      std::printf("ignored: %s\n", token.c_str());
      continue;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "m") {
      state.config.m = std::atoi(value.c_str());
    } else if (key == "k") {
      state.config.k = std::atoi(value.c_str());
    } else if (key == "lim") {
      state.config.lim = std::atoi(value.c_str());
    } else if (key == "replication") {
      state.config.replication = std::atoi(value.c_str());
    } else if (key == "shift") {
      state.config.shift_bits = std::atoi(value.c_str());
    } else if (key == "ttl") {
      state.config.ttl_ticks =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (key == "estimator") {
      if (value == "sll") {
        state.config.estimator = DhsEstimator::kSuperLogLog;
      } else if (value == "pcsa") {
        state.config.estimator = DhsEstimator::kPcsa;
      } else if (value == "hll") {
        state.config.estimator = DhsEstimator::kHyperLogLog;
      } else {
        std::printf("unknown estimator: %s\n", value.c_str());
      }
    } else {
      std::printf("unknown key: %s\n", key.c_str());
    }
  }
  state.client.reset();  // rebuilt lazily with the new config
  state.front.reset();
  std::printf("config: m=%d k=%d lim=%d replication=%d shift=%d "
              "estimator=%s\n",
              state.config.m, state.config.k, state.config.lim,
              state.config.replication, state.config.shift_bits,
              DhsEstimatorName(state.config.estimator));
}

void CmdInsert(SimState& state, std::istringstream& args) {
  std::string name;
  uint64_t n = 0;
  args >> name >> n;
  if (name.empty() || n == 0) {
    std::printf("usage: insert <metric-name> <n>\n");
    return;
  }
  if (!RequireClient(state)) return;
  const uint64_t metric = MetricFromName(name);
  uint64_t& offset = state.inserted[name];
  const MessageStats before = state.network->stats();
  // Interactive best-effort inserts: all origins are live, so the only
  // failure mode is an empty network, excluded by RequireClient.
  const auto flush = [&state, metric](const std::vector<uint64_t>& items) {
    const uint64_t origin = state.network->RandomNode(state.rng);
    if (state.front != nullptr) {
      (void)state.front->InsertBatch(origin, metric, items, state.rng);
    } else {
      (void)state.client->InsertBatch(origin, metric, items, state.rng);
    }
  };
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < n; ++i) {
    batch.push_back(state.item_hasher.HashU64(metric ^ (offset + i)));
    if (batch.size() == 1000) {
      flush(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) flush(batch);
  offset += n;
  const MessageStats delta = state.network->stats() - before;
  std::printf("inserted %llu items into '%s' (total %llu): %llu hops, "
              "%.1f kB\n",
              static_cast<unsigned long long>(n), name.c_str(),
              static_cast<unsigned long long>(offset),
              static_cast<unsigned long long>(delta.hops),
              static_cast<double>(delta.bytes) / 1024.0);
}

void CmdCount(SimState& state, std::istringstream& args) {
  std::vector<std::string> names;
  std::string name;
  while (args >> name) names.push_back(name);
  if (names.empty()) {
    std::printf("usage: count <metric-name> [more...]\n");
    return;
  }
  if (!RequireClient(state)) return;
  std::vector<uint64_t> metrics;
  for (const auto& metric_name : names) {
    metrics.push_back(MetricFromName(metric_name));
  }
  const uint64_t origin = state.network->RandomNode(state.rng);
  auto result = state.front != nullptr
                    ? state.front->CountMany(origin, metrics, state.rng)
                    : state.client->CountMany(origin, metrics, state.rng);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  for (size_t i = 0; i < names.size(); ++i) {
    const auto it = state.inserted.find(names[i]);
    if (it != state.inserted.end() && it->second > 0) {
      std::printf("%-16s ~%.0f  (inserted %llu, error %+.1f%%)\n",
                  names[i].c_str(), result->estimates[i],
                  static_cast<unsigned long long>(it->second),
                  100.0 * (result->estimates[i] -
                           static_cast<double>(it->second)) /
                      static_cast<double>(it->second));
    } else {
      std::printf("%-16s ~%.0f\n", names[i].c_str(),
                  result->estimates[i]);
    }
  }
  std::printf("sweep cost: %d nodes, %d hops, %.1f kB\n",
              result->cost.nodes_visited, result->cost.hops,
              static_cast<double>(result->cost.bytes) / 1024.0);
}

void CmdChurn(SimState& state, std::istringstream& args,
              const std::string& what) {
  int n = 0;
  args >> n;
  if (n <= 0 || !RequireNetwork(state)) return;
  ShardedNetwork* engine = state.engine.get();
  int done = 0;
  for (int i = 0; i < n; ++i) {
    if (what == "join") {
      const uint64_t id = state.rng.Next();
      const Status s =
          engine != nullptr ? engine->JoinNode(id) : state.network->AddNode(id);
      if (s.ok()) ++done;
      continue;
    }
    if (state.network->NumNodes() <= 2) break;
    const uint64_t victim = state.network->RandomNode(state.rng);
    Status s;
    if (what == "fail") {
      s = engine != nullptr ? engine->CrashNode(victim)
                            : state.network->FailNode(victim);
    } else {
      s = engine != nullptr ? engine->LeaveNode(victim)
                            : state.network->RemoveNode(victim);
    }
    if (s.ok()) ++done;
  }
  std::printf("%s: %d nodes (now %zu alive)\n", what.c_str(), done,
              state.network->NumNodes());
}

void CmdStats(SimState& state) {
  if (!RequireNetwork(state)) return;
  const MessageStats& stats = state.network->stats();
  std::printf("messages=%llu hops=%llu bytes=%.1f kB storage=%.1f kB "
              "clock=%llu\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<unsigned long long>(stats.hops),
              static_cast<double>(stats.bytes) / 1024.0,
              static_cast<double>(state.network->TotalStorageBytes()) /
                  1024.0,
              static_cast<unsigned long long>(state.network->now()));
}

void CmdLoads(SimState& state) {
  if (!RequireNetwork(state)) return;
  SampleStats stores;
  SampleStats probes;
  for (const auto& [id, load] : state.network->Loads()) {
    stores.Add(static_cast<double>(load.stores));
    probes.Add(static_cast<double>(load.probes));
  }
  std::printf("stores/node: median=%.0f p99=%.0f max=%.0f\n",
              stores.Median(), stores.Percentile(0.99), stores.max());
  std::printf("probes/node: median=%.0f p99=%.0f max=%.0f\n",
              probes.Median(), probes.Percentile(0.99), probes.max());
}

bool WriteObsOutputs(const SimState& state) {
  bool ok = true;
  if (state.tracer != nullptr && !state.trace_out.empty()) {
    std::ofstream os(state.trace_out);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   state.trace_out.c_str());
      ok = false;
    } else if (state.trace_out.size() > 6 &&
               state.trace_out.rfind(".jsonl") ==
                   state.trace_out.size() - 6) {
      state.tracer->WriteJsonl(os);
    } else {
      state.tracer->WriteChromeTrace(os);
    }
  }
  if (state.metrics != nullptr && !state.metrics_out.empty()) {
    std::ofstream os(state.metrics_out);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   state.metrics_out.c_str());
      ok = false;
    } else {
      state.metrics->WriteJson(os);
    }
  }
  return ok;
}

int Run(int argc, char** argv) {
  SimState state;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      state.trace_out = arg.substr(std::string("--trace-out=").size());
      state.tracer = std::make_unique<Tracer>();
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      state.metrics_out = arg.substr(std::string("--metrics-out=").size());
      state.metrics = std::make_unique<MetricsRegistry>();
    } else if (arg.rfind("--shards=", 0) == 0) {
      state.shards = std::atoi(arg.c_str() + 9);
      if (state.shards < 1) state.shards = 1;
      state.use_engine = true;
    } else if (arg == "--transport=sim") {
      state.use_loopback = false;
    } else if (arg == "--transport=loopback") {
      state.use_loopback = true;
    } else {
      std::fprintf(stderr,
                   "usage: dhs_sim [--shards=K] [--transport=sim|loopback] "
                   "[--trace-out=PATH] [--metrics-out=PATH] < commands\n");
      return 2;
    }
  }
  if (state.use_loopback && state.use_engine) {
    std::fprintf(stderr,
                 "error: --transport=loopback is incompatible with --shards "
                 "(the sharded engine exchanges op batches, not per-frame "
                 "traffic)\n");
    return 2;
  }
  std::string line;
  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("dhs_sim — type `help` for commands\n");
  }
  while (true) {
    if (interactive) std::printf("> ");
    if (!std::getline(std::cin, line)) break;
    std::istringstream args(line);
    std::string command;
    if (!(args >> command) || command[0] == '#') continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "network") {
      CmdNetwork(state, args);
    } else if (command == "config") {
      CmdConfig(state, args);
    } else if (command == "insert") {
      CmdInsert(state, args);
    } else if (command == "count") {
      CmdCount(state, args);
    } else if (command == "fail" || command == "leave" ||
               command == "join") {
      CmdChurn(state, args, command);
    } else if (command == "tick") {
      int n = 1;
      args >> n;
      if (RequireNetwork(state)) {
        if (state.engine != nullptr) {
          state.engine->AdvanceClock(static_cast<uint64_t>(n));
        } else {
          state.network->AdvanceClock(static_cast<uint64_t>(n));
        }
        std::printf("clock=%llu\n",
                    static_cast<unsigned long long>(state.network->now()));
      }
    } else if (command == "stats") {
      CmdStats(state);
    } else if (command == "loads") {
      CmdLoads(state);
    } else {
      std::printf("unknown command: %s (try `help`)\n", command.c_str());
    }
  }
  return WriteObsOutputs(state) ? 0 : 1;
}

}  // namespace
}  // namespace dhs

int main(int argc, char** argv) { return dhs::Run(argc, argv); }
