#!/usr/bin/env python3
"""Determinism / concurrency linter for the DHS simulator tree.

The simulator's headline property is determinism: fixed-seed runs are
byte-identical, across thread counts and shard counts, under fault
injection and adversarial schedules. That property is easy to lose one
innocuous line at a time — a raw std::thread here, a wall-clock read
there — so this linter enforces the repo's concurrency discipline
statically, in CI and as a ctest:

  raw-threading     std::mutex / std::thread / std::condition_variable
                    (and friends) are forbidden outside src/common/:
                    everything else must use the annotated, diagnosed
                    primitives in common/sync.h and the pools in
                    common/thread_pool.h. std::thread::
                    hardware_concurrency() is a pure query and allowed.

  unnamed-mutex     Mutex members must carry a registered name
                    (`Mutex mu_{"subsystem"};`): deadlock reports and
                    contention metrics aggregate by that name.

These two are token/syntax rules that need no type information, so a
line scanner is the right tool. The rules this script used to own that
DO need type information — wall-clock reads, nondeterministic RNG,
unguarded mutex siblings — moved to the AST-accurate checker suite in
tools/analysis/dhs_analyze.py (det-wallclock, det-rng,
lock-unguarded-member), which sees through typedefs and member types
instead of pattern-matching spellings. CI's lint job runs both
scripts; no rule is maintained twice.

Waivers: a line is exempt from rule R when it, or the line directly
above it, contains `det-lint: allow(R)` in a comment. Waive sparingly
and say why on the same comment. (dhs_analyze.py accepts the same
syntax, plus its own `dhs-analyze: allow(R)` spelling.)

Usage: concurrency_lint.py [--root DIR]
Exit status 0 = clean, 1 = findings (printed as file:line: rule: msg).
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
EXTENSIONS = (".h", ".cc")

WAIVER_RE = re.compile(r"det-lint:\s*allow\(([a-z-]+)\)")

RAW_THREADING_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|thread|jthread"
    r"|condition_variable|condition_variable_any)\b"
)
HARDWARE_CONCURRENCY_RE = re.compile(
    r"std::thread::hardware_concurrency"
)
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?Mutex\s+(\w+_)\s*(\{[^}]*\})?\s*;"
)


def strip_comments(line, in_block):
    """Returns (code, in_block): `line` with comment text blanked out,
    tracking /* */ state across lines. String literals are left alone —
    the forbidden tokens do not plausibly appear inside them here."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block


def lint_file(path, rel):
    findings = []
    in_common = rel.startswith("src/common/") or rel.startswith("src\\common\\")
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [(0, "io", str(err))]

    waivers = {}  # line number -> set of waived rules
    for num, line in enumerate(lines, start=1):
        for match in WAIVER_RE.finditer(line):
            # A waiver covers its own line and the one below.
            waivers.setdefault(num, set()).add(match.group(1))
            waivers.setdefault(num + 1, set()).add(match.group(1))

    def report(num, rule, message):
        if rule in waivers.get(num, ()):
            return
        findings.append((num, rule, message))

    mutex_members = []  # (line number, member name, has registered name)
    in_block = False
    for num, line in enumerate(lines, start=1):
        code, in_block = strip_comments(line, in_block)
        if not code.strip():
            continue

        if not in_common:
            scrubbed = HARDWARE_CONCURRENCY_RE.sub("", code)
            if RAW_THREADING_RE.search(scrubbed):
                report(
                    num, "raw-threading",
                    "raw std:: threading primitive outside src/common/ — "
                    "use common/sync.h / common/thread_pool.h",
                )

        if path.endswith(".h"):
            member = MUTEX_MEMBER_RE.match(code)
            if member:
                named = bool(member.group(2)) and '"' in member.group(2)
                mutex_members.append((num, member.group(1), named))

    for num, name, named in mutex_members:
        if not named:
            report(
                num, "unnamed-mutex",
                "Mutex member %s has no registered name — deadlock "
                "reports and contention metrics aggregate by name "
                "(Mutex %s{\"subsystem\"};)" % (name, name),
            )
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()

    failures = 0
    for scan_dir in SCAN_DIRS:
        top = os.path.join(args.root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _, filenames in os.walk(top):
            for filename in sorted(filenames):
                if not filename.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, args.root).replace(os.sep, "/")
                for num, rule, message in lint_file(path, rel):
                    print("%s:%d: %s: %s" % (rel, num, rule, message))
                    failures += 1
    if failures:
        print("concurrency_lint: %d finding(s)" % failures)
        return 1
    print("concurrency_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
