// audit_sim — differential model checker for the DHS simulator.
//
// Drives a deterministic randomized sequence of overlay operations
// (join / graceful leave / abrupt failure / raw put / get / clock ticks
// / DHS inserts / distributed counts) against BOTH the real simulator
// and an independent brute-force reference model, and cross-checks
// every observable after every step:
//
//   * membership: node count, successor/predecessor, range counts;
//   * responsibility: ResponsibleNode vs a cache-free argmin scan;
//   * routes: Lookup hop counts vs a cache-free re-execution of the
//     same greedy rules (closest-preceding-finger for Chord, one-bit-
//     per-hop XOR descent for Kademlia);
//   * cost accounting: MessageStats deltas vs reference-predicted
//     message/hop/byte counts, and vs the client's own DhsCostReport;
//   * store contents: every reference record retrievable with its exact
//     value, no extra live raw records anywhere;
//   * estimates: Count observables and estimates vs a global scan over
//     all node stores (lim >= N forces the probe walk to be exhaustive,
//     so any divergence is a simulator bug, not sampling noise);
//   * the full invariant audit (DhtNetwork::AuditFull + DhsClient::
//     AuditFull) at every checkpoint.
//
// Fault mode (--drop/--timeout/--crash): installs a seeded FaultPlan on
// the network and *replays* it — each raw operation predicts its own
// fault decision via the pure FaultPlan::DecisionFor before issuing the
// message, then checks the network agreed (status code, stats delta,
// crash victim). Crashes land mid-operation; the reference reconciles
// them from the network's crash log after every op. The checker's own
// introspection probes run with the plan paused, so store and count
// cross-checks stay exact, and a periodic unpaused count validates the
// degraded-result contract (cost-report/stats agreement, gave_up /
// bitmaps_unresolved / retries invariants) under live faults.
//
// The client runs with replication=2, so every differential check runs
// against a replicated store: replica copies must land where counting
// walks can reach them (ReplicaCandidates sharing geometry with
// ProbeCandidates), and walk observables must keep matching a scan of
// the reachable stores through arbitrary churn. The scan's ground truth
// is the per-bit *reachable universe* — interval members plus the
// geometry's boundary node — not every store: churn can strand a
// replica copy beyond any walk's horizon (e.g. a Chord copy two
// successors past the interval whose primary-chain holder then failed),
// and such a copy is invisible to every client by construction, not by
// bug.
//
// Any divergence aborts with a CHECK failure naming the step and the
// disagreeing values. Exit code 0 means N steps of zero divergence.
//
// --schedules=K runs K independently seeded schedules (seed, seed+1,
// ...), spread over --jobs worker threads (default: hardware
// concurrency) via RunTrials. Each schedule owns its whole world —
// network, reference model, client — so schedules share nothing;
// per-schedule reports are collected and printed serially in seed
// order, never interleaved. A divergence still aborts the process with
// the offending step and seed in the CHECK message (the failure
// handler is an atomic slot, so concurrent failures are race-free).
//
// Sharded mode (--shards=K > 1): every DHS operation, membership
// change and clock tick runs through the sharded execution engine
// (ShardedNetwork + DhsFrontDoor, K ID-space shards on worker
// threads) instead of the sequential client, and every differential
// check above then validates the sharded path — the same reference
// model, store scans, cost/stats books and trace reconciliation, with
// zero tolerance. Incompatible with --crash (the engine freezes
// membership during a batch).
//
// Interleaving mode (--interleave=N, defaulting --shards to 4): the
// adversarial schedule explorer. One 1-shard engine run pins the
// oracle world digest (clock, stats, loads, every store record), then
// N runs of the K-shard engine execute under a ScheduleController
// that serializes every ShardPool hand-off and picks the next task
// itself — PCT random-priority schedules by default, exhaustive
// depth-first enumeration of the schedule tree with
// --interleave-mode=exhaustive — and each schedule must reproduce the
// oracle digest byte-for-byte. This turns PR 6's "byte-identical at
// any shard count" claim into a property checked across many
// schedules instead of whichever one the OS produced. Composes with
// --drop/--timeout (not --crash).
//
// Serving mode (--serving): the differential leg for the serving layer
// (dhs/serving.h). Two identically seeded worlds run the same
// randomized schedule of insert/count submissions, flushes, clock
// ticks, churn and fault segments; one serves through DhsServing
// (coalescing + frontier cache + online lim tuner), the other replays
// the serving layer's wave log through a plain DhsClient with an
// identically seeded RNG. Every waiter's estimates, observables,
// gave_up, bitmaps_unresolved and full DhsCostReport must match the
// replayed wave bit for bit, message/hop/byte stats must stay in
// lockstep at every flush, and the final world digests must be
// byte-identical. Incompatible with --crash (membership loss is
// mirrored by schedule, not by fault replay).
//
// Usage: audit_sim [--geometry=chord|kademlia|both] [--steps=10000]
//                  [--seed=1] [--estimator=sll|pcsa|hll]
//                  [--shards=1] [--schedules=1] [--jobs=0 (hardware)]
//                  [--interleave=N] [--interleave-mode=pct|exhaustive]
//                  [--serving]
//                  [--drop=P] [--timeout=P] [--crash=P]
//                  [--trace-out=PATH] [--metrics-out=PATH]
//
// --trace-out / --metrics-out attach an observability sink to every
// world; each world writes PATH (suffixed .<geometry>.<seed> when the
// run spans several worlds) at the end of its schedule, and the checker
// additionally pins the tracer's own reconciliation invariant: the sum
// of root-span MessageStats deltas must equal the network's final
// counters exactly.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/schedule.h"
#include "common/thread_pool.h"
#include "dhs/client.h"
#include "dhs/front_door.h"
#include "dhs/serving.h"
#include "dht/chord.h"
#include "dht/fault.h"
#include "dht/kademlia.h"
#include "dht/shard.h"
#include "hashing/hasher.h"
#include "sketch/estimator.h"
#include "sketch/hyperloglog.h"

namespace dhs {
namespace {

enum class Geometry { kChord, kKademlia };

// ---------------------------------------------------------------------------
// Reference model: membership as a plain std::set, records as a plain
// std::map, every query answered by exhaustive scan. No caches, no
// incremental state — nothing to go stale.
// ---------------------------------------------------------------------------

struct RefRecord {
  uint64_t dht_key = 0;
  std::string value;
  uint64_t expires_at = kNoExpiry;
};

class RefModel {
 public:
  RefModel(Geometry geometry, const IdSpace& space)
      : geometry_(geometry), space_(space) {}

  void Join(uint64_t id) { members_.insert(id); }
  void Leave(uint64_t id) { members_.erase(id); }

  /// Abrupt failure: records at the failed node are lost. "At" is
  /// derived, not tracked: the responsible node of the record's key.
  void Fail(uint64_t id) {
    for (auto it = records_.begin(); it != records_.end();) {
      if (Responsible(it->second.dht_key) == id) {
        it = records_.erase(it);
      } else {
        ++it;
      }
    }
    members_.erase(id);
  }

  void Put(const std::string& key, uint64_t dht_key, std::string value,
           uint64_t expires_at) {
    records_[key] = RefRecord{dht_key, std::move(value), expires_at};
  }

  void Tick(uint64_t ticks) {
    now_ += ticks;
    for (auto it = records_.begin(); it != records_.end();) {
      if (it->second.expires_at <= now_) {
        it = records_.erase(it);
      } else {
        ++it;
      }
    }
  }

  uint64_t now() const { return now_; }
  size_t NumNodes() const { return members_.size(); }
  const std::set<uint64_t>& members() const { return members_; }
  const std::map<std::string, RefRecord>& records() const { return records_; }

  uint64_t RandomMember(Rng& rng) const {
    auto it = members_.begin();
    std::advance(it, static_cast<long>(rng.UniformU64(members_.size())));
    return *it;
  }

  /// First live node at or clockwise after `key` (Chord successor).
  uint64_t Successor(uint64_t key) const {
    auto it = members_.lower_bound(key);
    return it != members_.end() ? *it : *members_.begin();
  }

  uint64_t Predecessor(uint64_t id) const {
    auto it = members_.lower_bound(id);
    if (it == members_.begin()) return *members_.rbegin();
    return *std::prev(it);
  }

  /// Exhaustive-scan responsibility under this geometry.
  uint64_t Responsible(uint64_t key) const {
    key = space_.Clamp(key);
    if (geometry_ == Geometry::kChord) return Successor(key);
    uint64_t best = *members_.begin();
    for (uint64_t id : members_) {
      if ((id ^ key) < (best ^ key)) best = id;
    }
    return best;
  }

  size_t CountInRange(uint64_t lo, uint64_t hi) const {
    if (lo == hi) return 0;  // degenerate empty range
    size_t count = 0;
    for (uint64_t id : members_) {
      const bool inside = lo < hi ? (id >= lo && id < hi)    // plain
                                  : (id >= lo || id < hi);   // wraps 2^L
      if (inside) ++count;
    }
    return count;
  }

  /// Cache-free re-execution of the simulator's greedy routing rules;
  /// returns the hop count to the responsible node of `key`.
  int RouteHops(uint64_t from, uint64_t key) const {
    key = space_.Clamp(key);
    return geometry_ == Geometry::kChord ? ChordHops(from, key)
                                         : KademliaHops(from, key);
  }

 private:
  int ChordHops(uint64_t from, uint64_t key) const {
    uint64_t cur = from;
    int hops = 0;
    while (true) {
      CHECK_LT(hops, 1000) << "reference chord route did not converge";
      // Responsible iff key in (predecessor(cur), cur].
      if (space_.InIntervalExclIncl(key, Predecessor(cur), cur)) return hops;
      // Closest preceding finger: finger i = successor(cur + 2^i).
      const uint64_t dist = space_.Distance(cur, key);
      uint64_t next = 0;
      bool found = false;
      for (int i = dist > 1 ? Log2Floor(dist) : 0; i >= 0 && !found; --i) {
        const uint64_t finger =
            Successor(space_.Add(cur, uint64_t{1} << i));
        if (space_.InIntervalExclExcl(finger, cur, key)) {
          next = finger;
          found = true;
        }
      }
      if (!found) next = Successor(space_.Add(cur, 1));
      cur = next;
      ++hops;
    }
  }

  int KademliaHops(uint64_t from, uint64_t key) const {
    uint64_t cur = from;
    int hops = 0;
    while (true) {
      CHECK_LT(hops, 1000) << "reference kademlia route did not converge";
      const uint64_t diff = cur ^ key;
      if (diff == 0) return hops;
      const int b = Log2Floor(diff);
      const uint64_t block_size = uint64_t{1} << b;
      const uint64_t block_lo = (cur ^ block_size) & ~(block_size - 1);
      // Contact: the block member XOR-closest to *cur* (the simulator's
      // converged-k-bucket model); empty block => jump straight to the
      // key's responsible node.
      uint64_t next = cur;
      uint64_t best_dist = ~uint64_t{0};
      for (auto it = members_.lower_bound(block_lo);
           it != members_.end() && *it - block_lo < block_size; ++it) {
        if ((*it ^ cur) < best_dist) {
          best_dist = *it ^ cur;
          next = *it;
        }
      }
      if (next == cur) next = Responsible(key);  // block was empty
      if (next == cur) return hops;
      cur = next;
      ++hops;
    }
  }

  Geometry geometry_;
  IdSpace space_;
  uint64_t now_ = 0;
  std::set<uint64_t> members_;
  std::map<std::string, RefRecord> records_;
};

// ---------------------------------------------------------------------------
// Differential driver
// ---------------------------------------------------------------------------

struct SimOptions {
  Geometry geometry = Geometry::kChord;
  int steps = 10000;
  uint64_t seed = 1;
  DhsEstimator estimator = DhsEstimator::kSuperLogLog;
  int schedules = 1;  // independently seeded runs (seed, seed+1, ...)
  int jobs = 0;       // worker threads; 0 = hardware concurrency
  /// > 1: run every DHS operation and membership change through the
  /// sharded execution engine (ShardedNetwork + DhsFrontDoor) instead
  /// of the sequential client, with K ID-space shards. Every
  /// differential check then validates the sharded path: membership,
  /// store contents, global-scan observables, cost/stats/trace
  /// reconciliation. Incompatible with --crash (the engine freezes
  /// membership during a batch and rejects crash injection).
  int shards = 1;
  FaultConfig faults;  // probabilities only; seed derived per schedule
  std::string trace_out;    // per-world Chrome trace JSON (empty = off)
  std::string metrics_out;  // per-world metrics JSON (empty = off)
  bool multi_world = false;  // several worlds share the output paths
  /// > 0: adversarial schedule exploration. Runs the scenario once on
  /// the 1-shard engine oracle, then up to N controlled interleavings
  /// of the K-shard engine (PCT random priorities, or exhaustive
  /// enumeration with --interleave-mode=exhaustive) and requires every
  /// schedule to reproduce the oracle's world digest byte-for-byte.
  int interleave = 0;
  bool interleave_exhaustive = false;
  /// Route ops through the sharded engine even at shards == 1 (the
  /// inline-pool oracle the interleaved runs are compared against; the
  /// sequential client differs in probe accounting by contract).
  bool force_engine = false;
  /// Installed on the engine's pool right after Bootstrap (not owned).
  ScheduleController* schedule_controller = nullptr;
};

class DifferentialSim {
 public:
  explicit DifferentialSim(const SimOptions& options)
      : options_(options),
        net_(MakeNetwork(options.geometry)),
        ref_(options.geometry, net_->space()),
        rng_(options.seed),
        item_hasher_(options.seed ^ 0x9e3779b97f4a7c15ull) {}

  /// Runs the schedule to completion and returns the one-line success
  /// report (divergences abort via CHECK before this returns).
  std::string Run() {
    Bootstrap();
    for (step_ = 0; step_ < options_.steps; ++step_) {
      const uint64_t roll = rng_.UniformU64(100);
      if (roll < 6) {
        DoJoin();
      } else if (roll < 10) {
        DoLeaveOrFail();
      } else if (roll < 35) {
        DoPut();
      } else if (roll < 60) {
        DoGet();
      } else if (roll < 70) {
        DoTick();
      } else if (roll < 90) {
        DoLookupProbe();
      } else {
        DoDhsInsert();
      }
      ReconcileCrashes();
      // Crash faults can sink membership below the churn floor that
      // DoLeaveOrFail respects; top the overlay back up so the op mix
      // keeps exercising a populated network.
      while (faults_enabled_ && ref_.NumNodes() < kMinNodes) DoJoin();
      if (faults_enabled_ && step_ % 350 == 349) DoFaultyCount();
      CheckMembership();
      if (step_ % 250 == 249) CheckStoresAgainstReference();
      if (step_ % 500 == 499) CheckCountsAgainstGlobalScan();
      if (step_ % 100 == 99) RunFullAudit();
    }
    CheckStoresAgainstReference();
    CheckCountsAgainstGlobalScan();
    RunFullAudit();
    CheckTraceReconciliation();
    WriteObsOutputs();
    char shard_tag[24] = "";
    if (options_.shards > 1) {
      std::snprintf(shard_tag, sizeof(shard_tag), "/%d-shard",
                    options_.shards);
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "audit_sim: %s/%s%s: seed %" PRIu64 ": %d steps, %" PRIu64
                  " ops, 0 divergences\n",
                  net_->GeometryName(),
                  DhsEstimatorName(options_.estimator), shard_tag,
                  options_.seed, options_.steps, ops_);
    return line;
  }

  /// Serializes every world observable — clock, message/fault stats,
  /// per-node load counters, every live store record — into one string.
  /// Two runs of the same scenario must produce identical bytes for
  /// the engine's determinism contract to hold; the interleave driver
  /// compares controlled-schedule runs against the 1-shard oracle with
  /// this digest. Call after Run().
  std::string WorldDigest() const {
    std::ostringstream os;
    os << "now " << net_->now() << " stats " << net_->stats().messages
       << ' ' << net_->stats().hops << ' ' << net_->stats().bytes
       << " storage " << net_->TotalStorageBytes() << '\n';
    const FaultStats& fs = net_->fault_plan().stats();
    os << "faults " << fs.drops << ' ' << fs.timeouts << ' ' << fs.crashes
       << '\n';
    for (const auto& [id, load] : net_->Loads()) {
      os << "load " << id << ' ' << load.routed << ' ' << load.served
         << ' ' << load.stores << ' ' << load.probes << '\n';
    }
    for (uint64_t id : net_->NodeIds()) {
      net_->StoreAt(id)->ForEach(
          net_->now(), [&](const StoreKey& key, const StoreRecord& rec) {
            if (key.is_dhs()) {
              os << "dhs " << id << ' ' << key.metric_id() << ' '
                 << key.bit() << ' ' << key.vector_id();
            } else {
              os << "raw " << id << ' ' << key.raw() << ' ' << rec.value;
            }
            os << ' ' << rec.expires_at << '\n';
          });
    }
    return os.str();
  }

 private:
  static std::unique_ptr<DhtNetwork> MakeNetwork(Geometry geometry) {
    OverlayConfig config;
    config.hasher = "mix";
    if (geometry == Geometry::kChord) {
      return std::make_unique<ChordNetwork>(config);
    }
    return std::make_unique<KademliaNetwork>(config);
  }

  void Bootstrap() {
    if (!options_.trace_out.empty()) {
      tracer_ = std::make_unique<Tracer>();
      net_->AttachTracer(tracer_.get());
    }
    if (!options_.metrics_out.empty()) {
      metrics_ = std::make_unique<MetricsRegistry>();
      net_->AttachMetrics(metrics_.get());
    }
    for (int i = 0; i < 48; ++i) {
      const uint64_t id = rng_.Next();
      if (net_->AddNode(id).ok()) ref_.Join(id);
    }
    DhsConfig config;
    config.k = 24;
    config.m = 16;
    config.estimator = options_.estimator;
    // lim far above any node count this run reaches: the counting walk
    // must be exhaustive, making estimates deterministic functions of
    // store contents (comparable against the global scan below).
    config.lim = kMaxNodes + 8;
    config.max_lim = config.lim;
    config.ttl_ticks = 400;
    // Two copies per tuple: the checker then continuously proves that
    // replicas live where counting walks look (global-scan agreement
    // would break the first time a copy strands outside the probe set).
    config.replication = 2;
    auto client = DhsClient::Create(net_.get(), config);
    CHECK_OK(client) << "bootstrap client";
    client_ = std::make_unique<DhsClient>(std::move(client.value()));

    if (options_.shards > 1 || options_.force_engine) {
      CHECK(options_.faults.crash_probability == 0.0)
          << "--shards is incompatible with --crash: the sharded engine "
          << "freezes membership during a batch and rejects crash faults";
      engine_ =
          std::make_unique<ShardedNetwork>(net_.get(), options_.shards);
      engine_->SetScheduleController(options_.schedule_controller);
      auto front = DhsFrontDoor::Create(engine_.get(), config);
      CHECK_OK(front) << "bootstrap front door";
      front_ = std::make_unique<DhsFrontDoor>(std::move(front.value()));
    }

    if (options_.faults.Any()) {
      fault_cfg_ = options_.faults;
      // Per-schedule fault stream, decoupled from the op stream's seed.
      fault_cfg_.seed = SplitMix64(options_.seed ^ 0xfa017fa017fa017full);
      CHECK_OK(net_->SetFaultPlan(fault_cfg_)) << "bootstrap fault plan";
      faults_enabled_ = true;
    }
  }

  // ---- Fault replay ------------------------------------------------------

  /// Predicts the fault decision the network will draw for its next
  /// message, mirroring InjectFault: kNone passes through, and a draw
  /// against a self-delivery (target == from) is downgraded.
  FaultType PeekFault(uint64_t from, uint64_t target) const {
    if (!faults_enabled_) return FaultType::kNone;
    const FaultType decision =
        FaultPlan::DecisionFor(fault_cfg_, net_->fault_plan().seq());
    if (decision == FaultType::kNone) return decision;
    if (target == from) return FaultType::kNone;
    return decision;
  }

  /// A single-message op consumes exactly one fault decision — delivered
  /// or not — so the replayed plan can never drift out of phase.
  void CheckSeqAdvanced(uint64_t seq_before, const char* op) const {
    if (!faults_enabled_) return;
    CHECK_EQ(net_->fault_plan().seq(), seq_before + 1)
        << "step " << step_ << ": " << op
        << " consumed != 1 fault decision";
  }

  /// Checks a predicted-faulted op failed with the matching status code
  /// and charged exactly one message, zero hops, zero bytes (undelivered
  /// work is unobservable); for crashes, that the predicted victim is
  /// the one the network logged.
  void CheckFaultedOp(const Status& status, FaultType fault, uint64_t target,
                      const MessageStats& before, const char* op) {
    if (fault == FaultType::kTimeout) {
      CHECK(status.IsDeadlineExceeded())
          << "step " << step_ << ": " << op << ": predicted timeout, got "
          << status.ToString();
    } else {
      CHECK(status.IsUnavailable())
          << "step " << step_ << ": " << op << ": predicted "
          << FaultTypeName(fault) << ", got " << status.ToString();
    }
    if (fault == FaultType::kCrash) {
      const auto& log = net_->crash_log();
      CHECK(!log.empty() && log.back() == target)
          << "step " << step_ << ": " << op << ": crash victim diverges "
          << "from the predicted responsible node";
    }
    ExpectStatsDelta(before, 1, 0, 0, op);
  }

  /// Replays network crashes (fault-injected mid-operation) into the
  /// reference model, in the order they happened. Idempotent.
  void ReconcileCrashes() {
    const auto& log = net_->crash_log();
    for (; crash_log_seen_ < log.size(); ++crash_log_seen_) {
      ref_.Fail(log[crash_log_seen_]);
    }
  }

  /// Pauses fault injection for the checker's own introspection probes:
  /// they must observe the world, not perturb the fault stream.
  class PausedFaults {
   public:
    explicit PausedFaults(DhtNetwork* net) : net_(net) {
      net_->PauseFaults(true);
    }
    ~PausedFaults() { net_->PauseFaults(false); }
    PausedFaults(const PausedFaults&) = delete;
    PausedFaults& operator=(const PausedFaults&) = delete;

   private:
    DhtNetwork* net_;
  };

  // ---- Operations (each mirrored into the reference) ---------------------

  void DoJoin() {
    if (ref_.NumNodes() >= kMaxNodes) return;
    const uint64_t id = rng_.Next();
    const Status s = engine_ ? engine_->JoinNode(id) : net_->AddNode(id);
    if (ref_.members().count(id) > 0) {
      CHECK(s.IsInvalidArgument())
          << "step " << step_ << ": duplicate join not rejected";
      return;
    }
    CHECK_OK(s) << "step " << step_ << ": join";
    ref_.Join(id);
    ++ops_;
  }

  void DoLeaveOrFail() {
    if (ref_.NumNodes() <= kMinNodes) return;
    const uint64_t victim = ref_.RandomMember(rng_);
    if (rng_.UniformU64(2) == 0) {
      CHECK_OK(engine_ ? engine_->LeaveNode(victim)
                       : net_->RemoveNode(victim))
          << "step " << step_ << ": leave";
      ref_.Leave(victim);
    } else {
      // Reference drops the victim's records *before* forgetting it
      // (responsibility is evaluated in the pre-failure membership).
      ref_.Fail(victim);
      CHECK_OK(engine_ ? engine_->CrashNode(victim) : net_->FailNode(victim))
          << "step " << step_ << ": fail";
    }
    ++ops_;
  }

  void DoPut() {
    // The routing key is a hash of the record name (as a real DHT would
    // route it): re-puts overwrite in place instead of stranding stale
    // copies under a different random key.
    const uint64_t idx = rng_.UniformU64(64);
    const std::string key = "rec-" + std::to_string(idx);
    const std::string value = "v" + std::to_string(rng_.Next());
    const uint64_t dht_key = key_hasher_.HashU64(idx);
    const uint64_t ttl = 1 + rng_.UniformU64(60);
    const uint64_t from = ref_.RandomMember(rng_);

    const MessageStats before = net_->stats();
    const uint64_t seq_before = net_->fault_plan().seq();
    const uint64_t target = ref_.Responsible(dht_key);
    const FaultType fault = PeekFault(from, target);
    auto holder = net_->Put(from, dht_key, key, value, ttl);
    CheckSeqAdvanced(seq_before, "put");
    if (fault != FaultType::kNone) {
      CHECK(!holder.ok())
          << "step " << step_ << ": put delivered despite a predicted "
          << FaultTypeName(fault);
      CheckFaultedOp(holder.status(), fault, target, before, "faulted put");
      ReconcileCrashes();
      ++ops_;
      return;
    }
    const int expect_hops = ref_.RouteHops(from, dht_key);
    CHECK_OK(holder) << "step " << step_ << ": put";
    CHECK_EQ(holder.value(), target)
        << "step " << step_ << ": put landed on the wrong node";
    ExpectStatsDelta(before, 1, expect_hops,
                     static_cast<uint64_t>(expect_hops) *
                         (key.size() + value.size()),
                     "put");
    ref_.Put(key, dht_key, value, ref_.now() + ttl);
    ++ops_;
  }

  void DoGet() {
    const uint64_t from = ref_.RandomMember(rng_);
    // Half the time aim at a key the reference says is live.
    std::string key;
    uint64_t dht_key;
    if (!ref_.records().empty() && rng_.UniformU64(2) == 0) {
      auto it = ref_.records().begin();
      std::advance(it, static_cast<long>(
                           rng_.UniformU64(ref_.records().size())));
      key = it->first;
      dht_key = it->second.dht_key;
    } else {
      const uint64_t idx = rng_.UniformU64(96);
      key = "rec-" + std::to_string(idx);
      dht_key = key_hasher_.HashU64(idx);
    }

    const auto ref_it = ref_.records().find(key);
    const MessageStats before = net_->stats();
    const uint64_t seq_before = net_->fault_plan().seq();
    const uint64_t target = ref_.Responsible(dht_key);
    const FaultType fault = PeekFault(from, target);
    auto value = net_->GetValue(from, dht_key, key);
    CheckSeqAdvanced(seq_before, "get");
    if (fault != FaultType::kNone) {
      CHECK(!value.ok())
          << "step " << step_ << ": get delivered despite a predicted "
          << FaultTypeName(fault);
      CheckFaultedOp(value.status(), fault, target, before, "faulted get");
      ReconcileCrashes();
      ++ops_;
      return;
    }
    const int expect_hops = ref_.RouteHops(from, dht_key);
    if (ref_it != ref_.records().end()) {
      CHECK_OK(value) << "step " << step_
                      << ": live reference record not retrievable: " << key;
      CHECK(value.value() == ref_it->second.value)
          << "step " << step_ << ": value mismatch for " << key << ": got "
          << value.value() << " want " << ref_it->second.value;
    } else {
      CHECK(value.status().IsNotFound())
          << "step " << step_ << ": phantom record " << key << ": "
          << value.status().ToString();
    }
    ExpectStatsDelta(before, 1, expect_hops,
                     static_cast<uint64_t>(expect_hops) * key.size(), "get");
    ++ops_;
  }

  void DoTick() {
    const uint64_t ticks = 1 + rng_.UniformU64(8);
    if (engine_ != nullptr) {
      engine_->AdvanceClock(ticks);  // parallel per-shard expiry
    } else {
      net_->AdvanceClock(ticks);
    }
    ref_.Tick(ticks);
    CHECK_EQ(net_->now(), ref_.now()) << "step " << step_ << ": clock skew";
    ++ops_;
  }

  void DoLookupProbe() {
    const uint64_t from = ref_.RandomMember(rng_);
    const uint64_t key = rng_.Next();
    const MessageStats before = net_->stats();
    const uint64_t seq_before = net_->fault_plan().seq();
    const uint64_t target = ref_.Responsible(key);
    const FaultType fault = PeekFault(from, target);
    auto result = net_->Lookup(from, key, 7);
    CheckSeqAdvanced(seq_before, "lookup");
    if (fault != FaultType::kNone) {
      CHECK(!result.ok())
          << "step " << step_ << ": lookup delivered despite a predicted "
          << FaultTypeName(fault);
      CheckFaultedOp(result.status(), fault, target, before,
                     "faulted lookup");
      ReconcileCrashes();
      ++ops_;
      return;
    }
    const int expect_hops = ref_.RouteHops(from, key);
    CHECK_OK(result) << "step " << step_ << ": lookup";
    CHECK_EQ(result->node, target)
        << "step " << step_ << ": lookup resolved the wrong node";
    CHECK_EQ(result->hops, expect_hops)
        << "step " << step_ << ": hop count diverges from the cache-free "
        << "re-execution of the routing rules (stale cache?)";
    ExpectStatsDelta(before, 1, expect_hops,
                     static_cast<uint64_t>(expect_hops) * 7, "lookup");
    ++ops_;
  }

  void DoDhsInsert() {
    const uint64_t metric = 1 + rng_.UniformU64(2);
    std::vector<uint64_t> batch;
    const uint64_t n = 1 + rng_.UniformU64(200);
    for (uint64_t i = 0; i < n; ++i) {
      batch.push_back(item_hasher_.HashU64(next_item_++));
    }
    const MessageStats before = net_->stats();
    const uint64_t origin = ref_.RandomMember(rng_);
    auto inserted = front_ ? front_->InsertBatch(origin, metric, batch, rng_)
                           : client_->InsertBatch(origin, metric, batch, rng_);
    ReconcileCrashes();
    if (!inserted.ok()) {
      // Only a fault-injected transient failure may surface, and only
      // when every bit group failed (partial failure degrades instead).
      CHECK(faults_enabled_ && IsTransientFault(inserted.status()))
          << "step " << step_ << ": insert batch: "
          << inserted.status().ToString();
      ++ops_;
      return;
    }
    // The client's books must match the network's exactly: every issued
    // message — delivered, dropped, timed out, or crashed into — is one
    // dht_lookup or direct_probe, and only delivered ones move bits.
    const MessageStats& after = net_->stats();
    CHECK_EQ(after.messages - before.messages,
             static_cast<uint64_t>(inserted->dht_lookups +
                                   inserted->direct_probes))
        << "step " << step_ << ": insert message accounting";
    CHECK_EQ(after.hops - before.hops,
             static_cast<uint64_t>(inserted->hops))
        << "step " << step_ << ": insert hop accounting";
    CHECK_EQ(after.bytes - before.bytes, inserted->bytes)
        << "step " << step_ << ": insert byte accounting";
    CHECK_LE(inserted->replicas_written, inserted->replicas_requested)
        << "step " << step_ << ": wrote more replicas than requested";
    if (!faults_enabled_) {
      CHECK_EQ(inserted->retries, 0)
          << "step " << step_ << ": retries without fault injection";
      CHECK_EQ(inserted->bit_groups_failed, 0)
          << "step " << step_ << ": failed bit groups without faults";
    }
    ++ops_;
  }

  /// Runs a count with fault injection live (unlike the paused global
  /// scan check) and validates the degraded-result contract: exact cost
  /// accounting, and degradation reported iff faults actually applied.
  void DoFaultyCount() {
    if (next_item_ == 0) return;
    const uint64_t metric = 1 + rng_.UniformU64(2);
    const MessageStats before = net_->stats();
    const uint64_t applied_before = net_->fault_plan().stats().Applied();
    const uint64_t origin = ref_.RandomMember(rng_);
    auto result = front_ ? front_->Count(origin, metric, rng_)
                         : client_->Count(origin, metric, rng_);
    ReconcileCrashes();
    CHECK_OK(result)
        << "step " << step_
        << ": a count under faults must degrade, never error";
    const MessageStats& after = net_->stats();
    CHECK_EQ(after.messages - before.messages,
             static_cast<uint64_t>(result->cost.dht_lookups +
                                   result->cost.direct_probes))
        << "step " << step_ << ": faulty count message accounting";
    CHECK_EQ(after.hops - before.hops,
             static_cast<uint64_t>(result->cost.hops))
        << "step " << step_ << ": faulty count hop accounting";
    CHECK_EQ(after.bytes - before.bytes, result->cost.bytes)
        << "step " << step_ << ": faulty count byte accounting";
    const uint64_t applied =
        net_->fault_plan().stats().Applied() - applied_before;
    // Every retry is a response to an applied fault, and a clean run
    // must report itself clean.
    CHECK_LE(static_cast<uint64_t>(result->cost.retries), applied)
        << "step " << step_ << ": more retries than applied faults";
    if (applied == 0) {
      CHECK(result->cost.retries == 0 && result->cost.failed_probes == 0 &&
            !result->gave_up)
          << "step " << step_
          << ": degradation reported on a fault-free count";
    }
    if (result->gave_up) {
      CHECK_GT(result->bitmaps_unresolved, 0)
          << "step " << step_ << ": gave_up with no unresolved bitmaps";
    } else {
      CHECK_EQ(result->bitmaps_unresolved, 0)
          << "step " << step_ << ": unresolved bitmaps without gave_up";
    }
    ++ops_;
  }

  // ---- Differential checks ----------------------------------------------

  void ExpectStatsDelta(const MessageStats& before, uint64_t messages,
                        int hops, uint64_t bytes, const char* op) {
    const MessageStats& after = net_->stats();
    CHECK_EQ(after.messages - before.messages, messages)
        << "step " << step_ << ": " << op << " message accounting";
    CHECK_EQ(after.hops - before.hops, static_cast<uint64_t>(hops))
        << "step " << step_ << ": " << op << " hop accounting";
    CHECK_EQ(after.bytes - before.bytes, bytes)
        << "step " << step_ << ": " << op << " byte accounting";
  }

  void CheckMembership() {
    CHECK_EQ(net_->NumNodes(), ref_.NumNodes())
        << "step " << step_ << ": node count";
    // Spot-check responsibility and neighbours with fresh random keys.
    for (int i = 0; i < 4; ++i) {
      const uint64_t key = rng_.Next();
      auto responsible = net_->ResponsibleNode(key);
      CHECK_OK(responsible) << "step " << step_;
      CHECK_EQ(responsible.value(), ref_.Responsible(key))
          << "step " << step_ << ": responsibility for key " << key;
    }
    const uint64_t probe = ref_.RandomMember(rng_);
    auto succ = net_->SuccessorOfNode(probe);
    auto pred = net_->PredecessorOfNode(probe);
    CHECK(succ.ok() && pred.ok()) << "step " << step_;
    CHECK_EQ(succ.value(), ref_.Successor(space().Add(probe, 1)))
        << "step " << step_ << ": successor of " << probe;
    CHECK_EQ(pred.value(), ref_.Predecessor(probe))
        << "step " << step_ << ": predecessor of " << probe;
    const uint64_t lo = rng_.Next();
    const uint64_t hi = rng_.Next();
    CHECK_EQ(net_->CountNodesInRange(lo, hi), ref_.CountInRange(lo, hi))
        << "step " << step_ << ": range count [" << lo << ", " << hi << ")";
  }

  void CheckStoresAgainstReference() {
    // Every live reference record must be retrievable with its exact
    // value, and the network must hold no extra live raw records.
    const PausedFaults paused(net_.get());
    const uint64_t from = ref_.RandomMember(rng_);
    for (const auto& [key, rec] : ref_.records()) {
      auto value = net_->GetValue(from, rec.dht_key, key);
      CHECK_OK(value) << "step " << step_ << ": reference record " << key
                      << " missing from the network";
      CHECK(value.value() == rec.value)
          << "step " << step_ << ": stale value for " << key;
    }
    size_t live_raw = 0;
    for (uint64_t node : net_->NodeIds()) {
      net_->StoreAt(node)->ForEach(
          net_->now(), [&](const StoreKey& key, const StoreRecord&) {
            if (!key.is_dhs()) ++live_raw;
          });
    }
    CHECK_EQ(live_raw, ref_.records().size())
        << "step " << step_ << ": live raw record count diverges";
  }

  void CheckCountsAgainstGlobalScan() {
    if (next_item_ == 0) return;  // nothing inserted yet
    const PausedFaults paused(net_.get());
    for (uint64_t metric : {uint64_t{1}, uint64_t{2}}) {
      const MessageStats before = net_->stats();
      const uint64_t origin = ref_.RandomMember(rng_);
      auto result = front_ ? front_->Count(origin, metric, rng_)
                           : client_->Count(origin, metric, rng_);
      CHECK_OK(result) << "step " << step_ << ": count metric " << metric;
      // The client's own cost report must agree with the network's
      // books: both sides account every probe, hop and byte.
      const MessageStats& after = net_->stats();
      CHECK_EQ(after.hops - before.hops,
               static_cast<uint64_t>(result->cost.hops))
          << "step " << step_ << ": count hop accounting";
      CHECK_EQ(after.bytes - before.bytes, result->cost.bytes)
          << "step " << step_ << ": count byte accounting";
      CHECK_EQ(after.messages - before.messages,
               static_cast<uint64_t>(result->cost.dht_lookups +
                                     result->cost.direct_probes))
          << "step " << step_ << ": count message accounting";

      const std::vector<int> expected = GlobalScanObservables(metric);
      CHECK(result->observables == expected)
          << "step " << step_ << ": metric " << metric
          << ": probe-walk observables diverge from the global store scan "
          << "(lim >= N, so the walk must have been exhaustive)";
      const double expected_estimate = EstimateFromObservables(expected);
      CHECK(result->estimate == expected_estimate)
          << "step " << step_ << ": metric " << metric << ": estimate "
          << result->estimate << " vs global-scan estimate "
          << expected_estimate;
    }
    ++ops_;
  }

  /// Rebuilds the per-bitmap observables from a scan over every store a
  /// counting walk can reach — the ground truth the probe walk must
  /// reproduce. The universe of bit r is the walk's: the initial lookup
  /// target plus ProbeCandidates over I_r (probe-key independent once
  /// lim >= N). Stranded replica copies beyond that horizon are
  /// unreachable by every client, so they are no ground truth either.
  std::vector<int> GlobalScanObservables(uint64_t metric) const {
    const int m = client_->config().m;
    const int min_bit = client_->mapping().MinBit();
    const int max_bit = client_->mapping().MaxBit();
    // present[r][v]: a live tuple (metric, r, v) is reachable.
    std::vector<std::vector<char>> present(
        static_cast<size_t>(max_bit + 1),
        std::vector<char>(static_cast<size_t>(m), 0));
    for (int r = min_bit; r <= max_bit; ++r) {
      auto interval = client_->mapping().IntervalForBit(r);
      CHECK_OK(interval) << "step " << step_ << ": interval for bit " << r;
      auto start = net_->ResponsibleNode(interval->lo);
      CHECK_OK(start) << "step " << step_ << ": scan start for bit " << r;
      std::vector<uint64_t> universe = net_->ProbeCandidates(
          *interval, interval->lo, start.value(),
          client_->config().lim - 1);
      universe.push_back(start.value());
      for (uint64_t node : universe) {
        net_->StoreAt(node)->ForEachDhsMetric(
            metric, net_->now(),
            [&](const StoreKey& key, const StoreRecord&) {
              if (key.bit() == r && key.vector_id() < m) {
                present[static_cast<size_t>(r)]
                       [static_cast<size_t>(key.vector_id())] = 1;
              }
            });
      }
    }
    std::vector<int> observables(static_cast<size_t>(m));
    if (client_->config().estimator == DhsEstimator::kPcsa) {
      // Leftmost zero; saturation = max_bit + 1.
      for (int v = 0; v < m; ++v) {
        int leftmost_zero = max_bit + 1;
        for (int r = min_bit; r <= max_bit; ++r) {
          if (!present[static_cast<size_t>(r)][static_cast<size_t>(v)]) {
            leftmost_zero = r;
            break;
          }
        }
        observables[static_cast<size_t>(v)] = leftmost_zero;
      }
    } else {
      // Max rho; -1 for bitmaps that never saw an item.
      for (int v = 0; v < m; ++v) {
        int max_rho = -1;
        for (int r = max_bit; r >= min_bit; --r) {
          if (present[static_cast<size_t>(r)][static_cast<size_t>(v)]) {
            max_rho = r;
            break;
          }
        }
        observables[static_cast<size_t>(v)] = max_rho;
      }
    }
    return observables;
  }

  double EstimateFromObservables(const std::vector<int>& observables) const {
    switch (client_->config().estimator) {
      case DhsEstimator::kPcsa:
        return PcsaEstimateFromM(observables);
      case DhsEstimator::kHyperLogLog:
        return HyperLogLogEstimateFromM(observables);
      case DhsEstimator::kSuperLogLog:
        break;
    }
    return SuperLogLogEstimateFromM(observables, client_->config().theta0);
  }

  void RunFullAudit() {
    CHECK_OK(net_->AuditFull()) << "step " << step_;
    CHECK_OK(client_->AuditFull()) << "step " << step_;
  }

  /// With tracing on, the observability layer's own invariant rides
  /// along: every charged message was issued inside some traced
  /// operation, so the root-span deltas must sum to the network's
  /// counters exactly — messages, hops and bytes, faults included.
  void CheckTraceReconciliation() const {
    if (tracer_ == nullptr) return;
    const MessageStats total = tracer_->RootSpanTotal();
    CHECK_EQ(tracer_->OpenDepth(), 0u) << "span left open after the run";
    CHECK_EQ(total.messages, net_->stats().messages)
        << "trace reconciliation: messages";
    CHECK_EQ(total.hops, net_->stats().hops)
        << "trace reconciliation: hops";
    CHECK_EQ(total.bytes, net_->stats().bytes)
        << "trace reconciliation: bytes";
  }

  void WriteObsOutputs() const {
    const std::string suffix =
        options_.multi_world
            ? std::string(".") + net_->GeometryName() + "." +
                  std::to_string(options_.seed)
            : std::string();
    if (tracer_ != nullptr) {
      std::ofstream os(options_.trace_out + suffix);
      CHECK(os.good()) << "cannot write " << options_.trace_out << suffix;
      tracer_->WriteChromeTrace(os);
    }
    if (metrics_ != nullptr) {
      std::ofstream os(options_.metrics_out + suffix);
      CHECK(os.good()) << "cannot write " << options_.metrics_out << suffix;
      metrics_->WriteJson(os);
    }
  }

  const IdSpace& space() const { return net_->space(); }

  static constexpr size_t kMaxNodes = 96;
  static constexpr size_t kMinNodes = 12;

  SimOptions options_;
  std::unique_ptr<DhtNetwork> net_;
  RefModel ref_;
  Rng rng_;
  MixHasher item_hasher_;
  MixHasher key_hasher_{0x7265636f72647321ull};
  std::unique_ptr<DhsClient> client_;
  /// Sharded mode (--shards=K > 1): DHS and membership ops run through
  /// the sharded engine; client_ stays alive for mapping/config and the
  /// DHS-level audit (it reads network state only). front_ references
  /// engine_, so it is declared after (destroyed first).
  std::unique_ptr<ShardedNetwork> engine_;
  std::unique_ptr<DhsFrontDoor> front_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> metrics_;
  int step_ = 0;
  uint64_t ops_ = 0;
  uint64_t next_item_ = 0;
  bool faults_enabled_ = false;
  FaultConfig fault_cfg_;
  size_t crash_log_seen_ = 0;
};

// ---------------------------------------------------------------------------
// Serving differential leg (--serving)
// ---------------------------------------------------------------------------

std::unique_ptr<DhtNetwork> MakeOverlayNetwork(Geometry geometry) {
  OverlayConfig config;
  config.hasher = "mix";
  if (geometry == Geometry::kChord) {
    return std::make_unique<ChordNetwork>(config);
  }
  return std::make_unique<KademliaNetwork>(config);
}

/// Serializes every observable of a world — clock, message and fault
/// stats, every live store record — for the end-of-run byte-identity
/// check between the serving world and the replay world.
std::string ServingWorldDigest(const DhtNetwork& net) {
  std::ostringstream os;
  os << "now " << net.now() << " stats " << net.stats().messages << ' '
     << net.stats().hops << ' ' << net.stats().bytes << " storage "
     << net.TotalStorageBytes() << '\n';
  const FaultStats& fs = net.fault_plan().stats();
  os << "faults " << fs.drops << ' ' << fs.timeouts << ' ' << fs.crashes
     << ' ' << fs.decisions << '\n';
  for (uint64_t id : net.NodeIds()) {
    net.StoreAt(id)->ForEach(
        net.now(), [&](const StoreKey& key, const StoreRecord& rec) {
          os << "rec " << id << ' ' << key.ToBytes() << ' ' << rec.dht_key
             << ' ' << rec.value << ' ' << rec.expires_at << '\n';
        });
  }
  return os.str();
}

/// Twin-world checker: a DhsServing front end (coalescing, frontier
/// cache, online lim tuner) versus a plain DhsClient replaying the
/// serving layer's wave log with identically seeded randomness. Any
/// divergence aborts with a CHECK naming the step.
class ServingDifferential {
 public:
  ServingDifferential(const SimOptions& options, Geometry geometry)
      : options_(options),
        geometry_(geometry),
        serving_net_(MakeOverlayNetwork(geometry)),
        plain_net_(MakeOverlayNetwork(geometry)),
        schedule_(options.seed),
        serve_rng_(options.seed ^ 0xf00df00dull),
        replay_rng_(options.seed ^ 0xf00df00dull),
        item_hasher_(options.seed ^ 0x9e3779b97f4a7c15ull) {}

  std::string Run() {
    Bootstrap();
    for (step_ = 0; step_ < options_.steps; ++step_) {
      // Fault segments: the plan toggles only at a flush boundary, so
      // both worlds flip at the same point of the message stream.
      if (faults_configured_ && step_ % 4000 == 2000) SetFaults(true);
      if (faults_configured_ && step_ > 0 && step_ % 4000 == 0) {
        SetFaults(false);
      }
      const uint64_t roll = schedule_.UniformU64(100);
      if (roll < 30) {
        SubmitInsert();
      } else if (roll < 78) {
        SubmitCount();  // count-heavy: coalescing is the point
      } else if (roll < 90) {
        FlushAndReplay();
      } else if (roll < 96) {
        Tick();
      } else {
        Churn();
      }
      // Bound an epoch so ticket books cannot grow without limit.
      if (count_tickets_.size() + insert_tickets_.size() >= 64) {
        FlushAndReplay();
      }
    }
    FlushAndReplay();
    serving_net_->ClearFaultPlan();
    plain_net_->ClearFaultPlan();
    CheckWorldsIdentical();
    CHECK_OK(serving_net_->AuditFull()) << "serving world audit";
    CHECK_OK(plain_net_->AuditFull()) << "plain world audit";
    CHECK_OK(serving_client_->AuditFull()) << "serving client audit";
    CHECK_OK(plain_client_->AuditFull()) << "plain client audit";

    const ServingStats& stats = serving_->stats();
    char line[224];
    std::snprintf(line, sizeof(line),
                  "audit_sim: serving/%s/%s: seed %" PRIu64 ": %d steps, "
                  "%" PRIu64 " count reqs -> %" PRIu64 " waves (%" PRIu64
                  " coalesced), %" PRIu64 " insert reqs, %" PRIu64
                  " degraded, lim %d, 0 divergences\n",
                  serving_net_->GeometryName(),
                  DhsEstimatorName(options_.estimator), options_.seed,
                  options_.steps, stats.count_requests, stats.count_waves,
                  stats.coalesced, stats.insert_requests,
                  stats.degraded_waves, serving_->lim_override());
    return line;
  }

 private:
  static constexpr size_t kMinNodes = 48;
  static constexpr size_t kMaxNodes = 96;

  void Bootstrap() {
    Rng setup(options_.seed ^ 0x5eed5eedull);
    for (size_t i = 0; i < 64; ++i) {
      const uint64_t id = setup.Next();
      CHECK_OK(serving_net_->AddNode(id)) << "bootstrap join";
      CHECK_OK(plain_net_->AddNode(id)) << "bootstrap join (plain)";
    }
    DhsConfig config;
    config.k = 24;
    config.m = 16;
    config.estimator = options_.estimator;
    config.replication = 2;
    config.ttl_ticks = 600;
    config.frontier_cache = true;
    auto sc = DhsClient::Create(serving_net_.get(), config);
    CHECK_OK(sc) << "serving client";
    serving_client_ = std::make_unique<DhsClient>(std::move(sc.value()));
    auto pc = DhsClient::Create(plain_net_.get(), config);
    CHECK_OK(pc) << "plain client";
    plain_client_ = std::make_unique<DhsClient>(std::move(pc.value()));

    DhsServingConfig serving_config;
    // Tuner on: the replay must reproduce answers under a lim_override
    // that drifts over the run (it rides each wave-log entry).
    serving_config.tune_lim = true;
    auto serving = DhsServing::Create(serving_client_.get(), serving_config);
    CHECK_OK(serving) << "serving layer";
    serving_ = std::make_unique<DhsServing>(std::move(serving.value()));

    faults_configured_ = options_.faults.Any();
    CHECK(options_.faults.crash_probability == 0.0)
        << "--serving is incompatible with --crash";
  }

  void SetFaults(bool on) {
    FlushAndReplay();  // both worlds must flip at the same message
    if (on) {
      FaultConfig faults = options_.faults;
      faults.seed = SplitMix64(options_.seed ^ 0xfa017fa017fa017full);
      CHECK_OK(serving_net_->SetFaultPlan(faults)) << "serving fault plan";
      CHECK_OK(plain_net_->SetFaultPlan(faults)) << "plain fault plan";
    } else {
      serving_net_->ClearFaultPlan();
      plain_net_->ClearFaultPlan();
    }
  }

  void SubmitInsert() {
    const uint64_t metric = 1 + schedule_.UniformU64(4);
    const uint64_t n = 1 + schedule_.UniformU64(120);
    std::vector<uint64_t> items;
    items.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      items.push_back(item_hasher_.HashU64(next_item_++));
    }
    const uint64_t origin = serving_net_->RandomNode(schedule_);
    insert_tickets_.push_back(
        serving_->SubmitInsertBatch(origin, metric, std::move(items)));
  }

  void SubmitCount() {
    std::vector<uint64_t> set;
    set.push_back(1 + schedule_.UniformU64(4));
    if (schedule_.UniformU64(2) == 0) {
      const uint64_t extra = 1 + schedule_.UniformU64(4);
      if (extra != set[0]) set.push_back(extra);
    }
    const uint64_t origin = serving_net_->RandomNode(schedule_);
    count_tickets_.push_back({serving_->SubmitCount(origin, set), set});
  }

  void Tick() {
    const uint64_t ticks = 1 + schedule_.UniformU64(8);
    serving_net_->AdvanceClock(ticks);
    plain_net_->AdvanceClock(ticks);
  }

  /// Mirrored membership change. Requires an empty epoch so no pending
  /// request's origin can leave before its wave executes.
  void Churn() {
    FlushAndReplay();
    const size_t n = serving_net_->NumNodes();
    const bool join = n <= kMinNodes ||
                      (n < kMaxNodes && schedule_.UniformU64(2) == 0);
    if (join) {
      const uint64_t id = schedule_.Next();
      CHECK_OK(serving_net_->AddNode(id)) << "step " << step_ << ": join";
      CHECK_OK(plain_net_->AddNode(id)) << "step " << step_ << ": join";
    } else {
      const uint64_t victim = serving_net_->RandomNode(schedule_);
      CHECK_OK(serving_net_->RemoveNode(victim))
          << "step " << step_ << ": leave";
      CHECK_OK(plain_net_->RemoveNode(victim))
          << "step " << step_ << ": leave (plain)";
    }
  }

  void CheckSameMulti(const DhsClient::MultiCountResult& served,
                      const DhsClient::MultiCountResult& replayed,
                      const char* what) const {
    CHECK(served.estimates == replayed.estimates)
        << "step " << step_ << ": " << what << ": estimates diverge";
    CHECK(served.observables == replayed.observables)
        << "step " << step_ << ": " << what << ": observables diverge";
    CHECK_EQ(served.gave_up, replayed.gave_up)
        << "step " << step_ << ": " << what;
    CHECK_EQ(served.bitmaps_unresolved, replayed.bitmaps_unresolved)
        << "step " << step_ << ": " << what;
    CheckSameCost(served.cost, replayed.cost, what);
  }

  void CheckSameCost(const DhsCostReport& a, const DhsCostReport& b,
                     const char* what) const {
    CHECK_EQ(a.nodes_visited, b.nodes_visited)
        << "step " << step_ << ": " << what;
    CHECK_EQ(a.hops, b.hops) << "step " << step_ << ": " << what;
    CHECK_EQ(a.bytes, b.bytes) << "step " << step_ << ": " << what;
    CHECK_EQ(a.dht_lookups, b.dht_lookups)
        << "step " << step_ << ": " << what;
    CHECK_EQ(a.direct_probes, b.direct_probes)
        << "step " << step_ << ": " << what;
    CHECK_EQ(a.retries, b.retries) << "step " << step_ << ": " << what;
    CHECK_EQ(a.failed_probes, b.failed_probes)
        << "step " << step_ << ": " << what;
    CHECK_EQ(a.replicas_requested, b.replicas_requested)
        << "step " << step_ << ": " << what;
    CHECK_EQ(a.replicas_written, b.replicas_written)
        << "step " << step_ << ": " << what;
    CHECK_EQ(a.bit_groups_failed, b.bit_groups_failed)
        << "step " << step_ << ": " << what;
  }

  /// Flushes the serving world, replays its wave log through the plain
  /// client, and cross-checks every waiter's answer against the
  /// replayed wave. Clears the epoch's books afterwards.
  void FlushAndReplay() {
    if (count_tickets_.empty() && insert_tickets_.empty()) return;
    const Status flushed = serving_->Flush(serve_rng_);
    (void)flushed;  // per-ticket results carry any fault-path failure

    // Group the epoch's count tickets exactly as FlushCounts does: by
    // metric set, first-seen order.
    std::map<std::vector<uint64_t>, std::vector<uint64_t>> by_set;
    std::vector<const std::vector<uint64_t>*> group_order;
    for (const PendingCountTicket& pc : count_tickets_) {
      auto [it, inserted] = by_set.emplace(pc.set, std::vector<uint64_t>{});
      if (inserted) group_order.push_back(&it->first);
      it->second.push_back(pc.ticket);
    }

    size_t insert_i = 0;
    size_t group_i = 0;
    for (const ServingWave& wave : serving_->wave_log()) {
      switch (wave.kind) {
        case ServingWave::kInsertWave: {
          auto replayed = plain_client_->InsertBatch(
              wave.origin, wave.metric_id, wave.hashes, replay_rng_);
          CHECK_LT(insert_i, insert_tickets_.size())
              << "step " << step_ << ": more insert waves than tickets";
          auto served = serving_->TakeInsert(insert_tickets_[insert_i++]);
          CHECK_EQ(served.ok(), replayed.ok())
              << "step " << step_ << ": insert status diverges: "
              << served.status().ToString() << " vs "
              << replayed.status().ToString();
          if (served.ok()) {
            CheckSameCost(served.value(), replayed.value(), "insert wave");
          }
          break;
        }
        case ServingWave::kCountWave: {
          DhsCountOptions options;
          options.lim_override = wave.lim_override;
          auto replayed = plain_client_->CountMany(
              wave.origin, wave.metric_ids, replay_rng_, options);
          CHECK_LT(group_i, group_order.size())
              << "step " << step_ << ": more count waves than groups";
          const std::vector<uint64_t>& tickets = by_set[*group_order[group_i]];
          CHECK_EQ(tickets.size(), wave.waiters)
              << "step " << step_ << ": waiter count diverges";
          ++group_i;
          for (uint64_t ticket : tickets) {
            auto served = serving_->TakeCount(ticket);
            CHECK_EQ(served.ok(), replayed.ok())
                << "step " << step_ << ": count status diverges: "
                << served.status().ToString() << " vs "
                << replayed.status().ToString();
            if (served.ok()) {
              CheckSameMulti(served.value(), replayed.value(), "count wave");
            }
          }
          break;
        }
        case ServingWave::kInvalidate:
          plain_client_->InvalidateFrontier(wave.metric_id);
          break;
      }
    }
    CHECK_EQ(group_i, group_order.size())
        << "step " << step_ << ": count groups without a wave";
    CHECK_EQ(insert_i, insert_tickets_.size())
        << "step " << step_ << ": insert tickets without a wave";
    serving_->ClearWaveLog();
    count_tickets_.clear();
    insert_tickets_.clear();

    // The two worlds must stay in lockstep at every epoch boundary.
    CHECK_EQ(serving_net_->stats().messages, plain_net_->stats().messages)
        << "step " << step_ << ": message stats diverge";
    CHECK_EQ(serving_net_->stats().hops, plain_net_->stats().hops)
        << "step " << step_ << ": hop stats diverge";
    CHECK_EQ(serving_net_->stats().bytes, plain_net_->stats().bytes)
        << "step " << step_ << ": byte stats diverge";
    CHECK_EQ(serving_net_->fault_plan().stats().decisions,
             plain_net_->fault_plan().stats().decisions)
        << "step " << step_ << ": fault decision streams diverge";
  }

  void CheckWorldsIdentical() const {
    CHECK(ServingWorldDigest(*serving_net_) ==
          ServingWorldDigest(*plain_net_))
        << "final world digests diverge after " << options_.steps
        << " steps";
  }

  struct PendingCountTicket {
    uint64_t ticket;
    std::vector<uint64_t> set;
  };

  SimOptions options_;
  Geometry geometry_;
  std::unique_ptr<DhtNetwork> serving_net_;
  std::unique_ptr<DhtNetwork> plain_net_;
  std::unique_ptr<DhsClient> serving_client_;
  std::unique_ptr<DhsClient> plain_client_;
  std::unique_ptr<DhsServing> serving_;
  Rng schedule_;
  Rng serve_rng_;
  Rng replay_rng_;
  MixHasher item_hasher_;
  std::vector<PendingCountTicket> count_tickets_;
  std::vector<uint64_t> insert_tickets_;
  int step_ = 0;
  uint64_t next_item_ = 0;
  bool faults_configured_ = false;
};

/// Adversarial schedule exploration (--interleave=N): per geometry,
/// one 1-shard engine-oracle run pins the expected world digest, then
/// up to N controlled interleavings of the K-shard engine — every task
/// hand-off decided by the controller instead of the OS — must
/// reproduce it byte-for-byte. PCT mode draws a fresh random-priority
/// schedule per run; exhaustive mode enumerates the schedule tree
/// depth-first until it is exhausted or the budget runs out.
int RunInterleave(const SimOptions& base,
                  const std::vector<Geometry>& geometries) {
  for (Geometry g : geometries) {
    SimOptions oracle_opts = base;
    oracle_opts.geometry = g;
    oracle_opts.shards = 1;
    oracle_opts.force_engine = true;
    oracle_opts.schedule_controller = nullptr;
    DifferentialSim oracle(oracle_opts);
    std::fputs(oracle.Run().c_str(), stdout);
    const std::string want = oracle.WorldDigest();

    int explored = 0;
    uint64_t controlled_steps = 0;
    if (base.interleave_exhaustive) {
      ExhaustiveScheduleController controller(base.shards);
      bool more = true;
      while (more && explored < base.interleave) {
        SimOptions o = base;
        o.geometry = g;
        o.schedule_controller = &controller;
        DifferentialSim sim(o);
        sim.Run();
        CHECK(sim.WorldDigest() == want)
            << "exhaustive schedule " << explored << " ("
            << (g == Geometry::kChord ? "chord" : "kademlia")
            << ") diverged from the 1-shard oracle digest";
        ++explored;
        controlled_steps = controller.steps();
        more = controller.NextSchedule();
      }
      std::printf("audit_sim: %s: %d exhaustive schedules%s, %" PRIu64
                  " controlled hand-offs, all byte-identical to the "
                  "oracle\n",
                  g == Geometry::kChord ? "chord" : "kademlia", explored,
                  more ? " (budget reached)" : " (tree exhausted)",
                  controlled_steps);
    } else {
      for (; explored < base.interleave; ++explored) {
        // Decorrelated per-schedule PCT seed, reproducible from --seed.
        PctScheduleController controller(
            base.shards,
            SplitMix64(base.seed ^
                       (static_cast<uint64_t>(explored) + 1) *
                           0x9e3779b97f4a7c15ull));
        SimOptions o = base;
        o.geometry = g;
        o.schedule_controller = &controller;
        DifferentialSim sim(o);
        sim.Run();
        CHECK(sim.WorldDigest() == want)
            << "PCT schedule " << explored << " ("
            << (g == Geometry::kChord ? "chord" : "kademlia")
            << ") diverged from the 1-shard oracle digest";
        controlled_steps += controller.steps();
      }
      std::printf("audit_sim: %s: %d PCT schedules at %d shards, %" PRIu64
                  " controlled hand-offs, all byte-identical to the "
                  "oracle\n",
                  g == Geometry::kChord ? "chord" : "kademlia", explored,
                  base.shards, controlled_steps);
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  SimOptions options;
  bool both = true;  // default: both geometries, one report each
  bool serving_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--steps=", 0) == 0) {
      options.steps = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--geometry=chord") {
      options.geometry = Geometry::kChord;
      both = false;
    } else if (arg == "--geometry=kademlia") {
      options.geometry = Geometry::kKademlia;
      both = false;
    } else if (arg == "--geometry=both") {
      both = true;
    } else if (arg == "--estimator=sll") {
      options.estimator = DhsEstimator::kSuperLogLog;
    } else if (arg == "--estimator=pcsa") {
      options.estimator = DhsEstimator::kPcsa;
    } else if (arg == "--estimator=hll") {
      options.estimator = DhsEstimator::kHyperLogLog;
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.shards = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--interleave=", 0) == 0) {
      options.interleave = std::atoi(arg.c_str() + 13);
    } else if (arg == "--interleave-mode=pct") {
      options.interleave_exhaustive = false;
    } else if (arg == "--interleave-mode=exhaustive") {
      options.interleave_exhaustive = true;
    } else if (arg == "--serving") {
      serving_mode = true;
    } else if (arg.rfind("--schedules=", 0) == 0) {
      options.schedules = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--drop=", 0) == 0) {
      options.faults.drop_probability = std::strtod(arg.c_str() + 7, nullptr);
    } else if (arg.rfind("--timeout=", 0) == 0) {
      options.faults.timeout_probability =
          std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--crash=", 0) == 0) {
      options.faults.crash_probability = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else {
      std::fprintf(stderr,
                   "usage: audit_sim [--geometry=chord|kademlia|both] "
                   "[--steps=N] [--seed=S] [--estimator=sll|pcsa|hll] "
                   "[--shards=K] [--schedules=K] [--jobs=J] "
                   "[--interleave=N] [--interleave-mode=pct|exhaustive] "
                   "[--serving] [--drop=P] [--timeout=P] [--crash=P] "
                   "[--trace-out=PATH] [--metrics-out=PATH]\n");
      return 2;
    }
  }
  if (options.schedules < 1) options.schedules = 1;
  if (options.shards < 1) options.shards = 1;
  CHECK_OK(options.faults.Validate()) << "fault probabilities";

  std::vector<Geometry> geometries;
  if (both) {
    geometries = {Geometry::kChord, Geometry::kKademlia};
  } else {
    geometries = {options.geometry};
  }
  options.multi_world = geometries.size() * static_cast<size_t>(options.schedules) > 1;

  if (options.interleave > 0) {
    if (options.shards < 2) options.shards = 4;  // controller needs workers
    return RunInterleave(options, geometries);
  }

  if (serving_mode) {
    CHECK(options.faults.crash_probability == 0.0)
        << "--serving is incompatible with --crash";
    for (Geometry g : geometries) {
      ServingDifferential sim(options, g);
      std::fputs(sim.Run().c_str(), stdout);
    }
    return 0;
  }

  // Each schedule is one fully independent world per geometry; RunTrials
  // spreads schedules over the worker pool and returns their reports in
  // seed order (the per-unit rng is unused — schedule seeds stay the
  // documented, reproducible `seed + k`).
  const int jobs = options.jobs > 0 ? options.jobs : DefaultTrialThreads();
  const auto reports = RunTrials(
      options.schedules, options.seed, jobs,
      [&](int schedule, Rng& /*rng*/) -> std::string {
        std::string report;
        for (Geometry g : geometries) {
          SimOptions o = options;
          o.geometry = g;
          o.seed = options.seed + static_cast<uint64_t>(schedule);
          report += DifferentialSim(o).Run();
        }
        return report;
      });
  for (const std::string& report : reports) {
    std::fputs(report.c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace dhs

int main(int argc, char** argv) { return dhs::Main(argc, argv); }
