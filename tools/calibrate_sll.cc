// Calibrates the truncated super-LogLog constant alpha~_m (theta0 = 0.7).
//
// For each power-of-two m, draws `trials` random multisets of n distinct
// uniform 64-bit hashes, computes the raw truncated statistic
// S = m0 * 2^(truncated mean M), and prints alpha~_m = n / mean(S).
// The resulting table is baked into src/sketch/estimator.cc.
//
// Usage: calibrate_sll [trials] [n]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "sketch/loglog.h"

namespace {

double RawTruncatedStatistic(const std::vector<int>& observables,
                             double theta0) {
  const int m = static_cast<int>(observables.size());
  int m0 = static_cast<int>(theta0 * m);
  if (m0 < 1) m0 = 1;
  std::vector<int> sorted(observables);
  for (int& v : sorted) {
    if (v < 0) v = 0;
  }
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (int i = 0; i < m0; ++i) sum += sorted[i];
  return m0 * std::exp2(sum / m0);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 400;
  const uint64_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000000;
  const double theta0 = 0.7;

  std::printf("# alpha~_m calibration: theta0=%.2f trials=%d n=%llu\n",
              theta0, trials, static_cast<unsigned long long>(n));
  dhs::Rng rng(20260705);
  for (int log_m = 4; log_m <= 13; ++log_m) {
    const int m = 1 << log_m;
    double sum_raw = 0.0;
    for (int t = 0; t < trials; ++t) {
      dhs::LogLogSketch sketch(m, 32);
      for (uint64_t i = 0; i < n; ++i) sketch.AddHash(rng.Next());
      sum_raw += RawTruncatedStatistic(sketch.ObservablesM(), theta0);
    }
    const double alpha = static_cast<double>(n) / (sum_raw / trials);
    std::printf("m=%5d  alpha~=%.5f\n", m, alpha);
  }
  return 0;
}
