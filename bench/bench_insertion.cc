// E1 — "Insertions and Maintenance" (§5.2).
//
// Paper reports (N = 1024, L = 64, k = 24, m = 512):
//   * ~3.4 routing hops and ~27 bytes per insertion/update;
//   * ~384 kB average storage per node per relation with 100-bucket
//     histograms at m = 512, ~1.5 MB per node over all four relations.
//
// This binary inserts Q/R/S/T (scaled) into a DHS and prints the same
// quantities for both the cardinality metrics and the histogram case.

#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "histogram/equi_width.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  PrintHeader("E1: insertion & maintenance costs",
              "N=" + std::to_string(nodes) + ", k=24, m=512, scale=" +
                  FormatDouble(scale, 3));

  auto net = MakeNetwork(nodes, 1);
  DhsConfig config;
  config.k = 24;
  config.m = 512;
  auto client_or = DhsClient::Create(net.get(), config);
  if (!client_or.ok()) {
    std::fprintf(stderr, "client: %s\n",
                 client_or.status().ToString().c_str());
    return;
  }
  DhsClient client = std::move(client_or.value());
  Rng rng(2);

  // Phase 0: the paper's headline per-insertion figure — a single item
  // inserted/refreshed individually (one 8-byte DHS tuple routed over
  // O(log N) hops).
  {
    MixHasher hasher(99);
    net->ResetStats();
    constexpr int kSingles = 5000;
    for (int i = 0; i < kSingles; ++i) {
      // Insert cannot fail on a live, non-empty overlay; the cost rows
      // below are the observable.
      (void)client.Insert(net->RandomNode(rng), 42,
                          hasher.HashU64(static_cast<uint64_t>(i)), rng);
    }
    const MessageStats delta = net->stats();
    std::printf("single-item insertion: %.2f hops, %.1f bytes on average "
                "(%d inserts)\n",
                static_cast<double>(delta.hops) / kSingles,
                static_cast<double>(delta.bytes) / kSingles, kSingles);
    PrintPaperNote("~3.4 hops and ~27 B per insertion/update (N=1024)");
  }

  // Phase 1: bulk-load the four relations (§3.2 bulk insertion) and
  // report amortized per-tuple costs plus per-node storage per metric.
  PrintRow({"relation", "tuples", "hops/tuple", "B/tuple",
            "store kB/node"});
  uint64_t grand_tuples = 0;
  size_t previous_storage = 0;
  const auto specs = PaperRelationSpecs(scale);
  for (size_t i = 0; i < specs.size(); ++i) {
    const Relation relation = RelationGenerator::Generate(specs[i], 10 + i);
    const MessageStats delta =
        PopulateRelation(*net, client, relation, RelationMetric(i), rng);
    grand_tuples += relation.NumTuples();
    const size_t storage = net->TotalStorageBytes();
    const double per_node_kb =
        static_cast<double>(storage - previous_storage) /
        static_cast<double>(nodes) / 1024.0;
    previous_storage = storage;
    const double tuples = static_cast<double>(relation.NumTuples());
    PrintRow({relation.spec().name, std::to_string(relation.NumTuples()),
              FormatDouble(static_cast<double>(delta.hops) / tuples, 3),
              FormatDouble(static_cast<double>(delta.bytes) / tuples, 2),
              FormatDouble(per_node_kb, 1)});
  }
  PrintPaperNote("bulk insertion amortizes the per-item cost to near zero "
                 "(a node records ALL its items with <= k+1 lookups); "
                 "per-node storage per metric is O(m*b) ~ 4 kB at m=512");

  // Phase 2: per-node storage with 100-bucket histograms (the paper's
  // storage experiment: 100 buckets x 512 bitmaps per relation).
  auto hist_net = MakeNetwork(nodes, 3);
  auto hist_client_or = DhsClient::Create(hist_net.get(), config);
  CHECK_OK(hist_client_or);
  DhsClient hist_client = std::move(hist_client_or).value();
  const HistogramSpec hspec(1, 1000, 100);
  size_t prev = 0;
  PrintRow({"relation", "histogram storage kB/node (100 buckets, m=512)"});
  for (size_t i = 0; i < specs.size(); ++i) {
    const Relation relation = RelationGenerator::Generate(specs[i], 10 + i);
    DhsHistogram histogram(&hist_client, hspec, 500 + i);
    (void)PopulateHistogram(*hist_net, histogram, relation, rng);
    const size_t storage = hist_net->TotalStorageBytes();
    PrintRow({relation.spec().name,
              FormatDouble(static_cast<double>(storage - prev) /
                               static_cast<double>(nodes) / 1024.0,
                           1)});
    prev = storage;
  }
  const double total_mb = static_cast<double>(hist_net->TotalStorageBytes()) /
                          static_cast<double>(nodes) / (1024.0 * 1024.0);
  std::printf("total per-node histogram storage: %.2f MB\n", total_mb);
  PrintPaperNote(
      "~384 kB/node/relation, ~1.5 MB/node total at full scale (storage "
      "scales with DHS_SCALE)");
  std::printf("(inserted %llu tuples in total)\n",
              static_cast<unsigned long long>(grand_tuples));
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
