#include "dht/chord.h"
#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "hashing/hasher.h"

namespace dhs {
namespace bench {

double EnvDouble(const char* name, double fallback) {
  // Env overrides are read during single-threaded bench setup, before
  // any RunTrials worker exists, and nothing in the repo calls setenv.
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atof(value);
}

int EnvInt(const char* name, int fallback) {
  // See EnvDouble on why the unguarded getenv is safe here.
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoi(value);
}

double WorkloadScale() { return EnvDouble("DHS_SCALE", 0.1); }

int TrialCount(int fallback) { return EnvInt("DHS_TRIALS", fallback); }

int TrialThreads() { return EnvInt("DHS_THREADS", DefaultTrialThreads()); }

void PrintRunnerFooter(int trials, int threads, double wall_seconds) {
  std::printf("runner: trials/point=%d threads=%d wall=%.2fs\n", trials,
              threads, wall_seconds);
}

std::unique_ptr<ChordNetwork> MakeNetwork(int nodes, uint64_t seed,
                                          const std::string& hasher) {
  ChordConfig config;
  config.hasher = hasher;
  auto net = std::make_unique<ChordNetwork>(config);
  Rng rng(seed);
  while (net->NumNodes() < static_cast<size_t>(nodes)) {
    (void)net->AddNode(rng.Next());  // duplicate IDs simply retry
  }
  return net;
}

std::vector<RelationSpec> PaperRelationSpecs(double scale) {
  std::vector<RelationSpec> specs(4);
  const char* names[4] = {"Q", "R", "S", "T"};
  const double millions[4] = {10, 20, 40, 80};
  for (int i = 0; i < 4; ++i) {
    specs[i].name = names[i];
    specs[i].num_tuples =
        static_cast<uint64_t>(millions[i] * 1e6 * scale);
    specs[i].min_value = 1;
    specs[i].domain_size = 1000;
    specs[i].zipf_theta = 0.7;
    specs[i].tuple_bytes = 1024;
  }
  return specs;
}

MessageStats PopulateRelation(DhtNetwork& net, DhsClient& client,
                              const Relation& relation, uint64_t metric,
                              Rng& rng) {
  const MessageStats before = net.stats();
  MixHasher hasher(metric * 0x1234567);
  const auto assignment = AssignTuplesToNodes(relation, net.NodeIds(), rng);
  std::vector<uint64_t> hashes;
  for (const auto& [node, tuples] : assignment) {
    hashes.clear();
    hashes.reserve(tuples.size());
    for (uint64_t t : tuples) {
      hashes.push_back(hasher.HashU64(relation.TupleId(t)));
    }
    // All origins are live members, so InsertBatch cannot fail; any
    // logic bug surfaces in the benches' error/cost rows.
    (void)client.InsertBatch(node, metric, hashes, rng);
  }
  return net.stats() - before;
}

MessageStats PopulateHistogram(DhtNetwork& net, DhsHistogram& histogram,
                               const Relation& relation, Rng& rng) {
  const MessageStats before = net.stats();
  MixHasher hasher(SplitMix64(relation.spec().name[0]) ^ 0x77);
  const auto assignment = AssignTuplesToNodes(relation, net.NodeIds(), rng);
  std::vector<std::pair<uint64_t, int64_t>> items;
  for (const auto& [node, tuples] : assignment) {
    items.clear();
    items.reserve(tuples.size());
    for (uint64_t t : tuples) {
      items.emplace_back(hasher.HashU64(relation.TupleId(t)),
                         relation.Value(t));
    }
    // Same justification as PopulateRelation above.
    (void)histogram.InsertBatch(node, items, rng);
  }
  return net.stats() - before;
}

void PrintHeader(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!setup.empty()) std::printf("setup: %s\n", setup.c_str());
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

void PrintPaperNote(const std::string& note) {
  std::printf("paper:  %s\n", note.c_str());
}

void CountingCostSummary::Add(const DhsCostReport& cost, double estimate,
                              double truth) {
  nodes_visited.Add(cost.nodes_visited);
  hops.Add(cost.hops);
  bytes.Add(static_cast<double>(cost.bytes));
  error.Add(RelativeError(estimate, truth));
}

void CountingCostSummary::Merge(const CountingCostSummary& other) {
  nodes_visited.Merge(other.nodes_visited);
  hops.Merge(other.hops);
  bytes.Merge(other.bytes);
  error.Merge(other.error);
}

}  // namespace bench
}  // namespace dhs
