// A6 — Extension: advanced histogram types over DHS (paper footnote 5:
// "compressed, v-optimal, maxdiff" are named as work in progress).
//
// Two-phase construction: a fine-grained (200-cell) equi-width histogram
// is reconstructed from the DHS once (bucket boundaries must be known
// network-wide, §4.3); the estimates are then re-bucketized locally into
// B buckets with the equi-width, maxdiff and v-optimal rules. The table
// reports range-selectivity estimation error of each type against the
// exact relation, at equal bucket budget B.

#include <cstdio>
#include <memory>

#include "common/check.h"
#include "bench_util.h"
#include "histogram/advanced.h"
#include "histogram/equi_width.h"

namespace dhs {
namespace bench {
namespace {

// Selectivity error of a B-bucket summary (built from `cells` with the
// given algorithm) over random ranges, against the exact relation.
double RangeError(const std::vector<VarBucket>& buckets,
                  const HistogramSpec& cell_spec, const Relation& relation,
                  Rng& rng) {
  StreamingStats error;
  for (int q = 0; q < 400; ++q) {
    const int64_t width =
        1 + static_cast<int64_t>(rng.UniformU64(200));
    const int64_t lo = 1 + static_cast<int64_t>(rng.UniformU64(
                               static_cast<uint64_t>(1000 - width)));
    const int64_t hi = lo + width - 1;
    // Convert value range to cell-index range.
    const int lo_cell = cell_spec.BucketOf(lo);
    const int hi_cell = cell_spec.BucketOf(hi);
    const double estimate =
        EstimateRangeFromVarBuckets(buckets, lo_cell, hi_cell);
    const double truth = static_cast<double>(relation.CountValueRange(
        cell_spec.BucketBounds(lo_cell).first,
        cell_spec.BucketBounds(hi_cell).second));
    if (truth > 0) error.Add(RelativeError(estimate, truth));
  }
  return error.mean();
}

std::vector<VarBucket> EquiWidthPartition(const std::vector<double>& cells,
                                          int num_buckets) {
  std::vector<VarBucket> buckets;
  const int v = static_cast<int>(cells.size());
  for (int b = 0; b < num_buckets; ++b) {
    VarBucket bucket;
    bucket.lo_index = b * v / num_buckets;
    bucket.hi_index = (b + 1) * v / num_buckets - 1;
    for (int i = bucket.lo_index; i <= bucket.hi_index; ++i) {
      bucket.total += cells[static_cast<size_t>(i)];
    }
    buckets.push_back(bucket);
  }
  return buckets;
}

void Run() {
  const double scale = EnvDouble("DHS_SCALE", 0.05);
  const int nodes = EnvInt("DHS_NODES", 256);
  const int m = EnvInt("DHS_M", 128);
  PrintHeader("A6: advanced histogram types over DHS (footnote 5)",
              "N=" + std::to_string(nodes) + ", m=" + std::to_string(m) +
                  ", 200 base cells, relation T, scale=" +
                  FormatDouble(scale, 3));

  auto net = MakeNetwork(nodes, 1);
  DhsConfig config;
  config.k = 24;
  config.m = m;
  auto client_or = DhsClient::Create(net.get(), config);
  CHECK_OK(client_or);
  DhsClient client = std::move(client_or).value();

  RelationSpec spec = PaperRelationSpecs(scale)[3];  // T, most skewed mass
  const Relation relation = RelationGenerator::Generate(spec, 13);
  const HistogramSpec cell_spec(1, 1000, 200);
  DhsHistogram base(&client, cell_spec, 0xadcaf);
  Rng rng(2);
  (void)PopulateHistogram(*net, base, relation, rng);

  auto reconstruction = base.Reconstruct(net->RandomNode(rng), rng);
  if (!reconstruction.ok()) return;
  const std::vector<double>& cells = reconstruction->buckets;

  PrintRow({"buckets B", "equi-width", "maxdiff", "v-optimal",
            "compressed"},
           14);
  for (int b : {10, 20, 50}) {
    auto maxdiff = BuildMaxDiffHistogram(cells, b);
    auto voptimal = BuildVOptimalHistogram(cells, b);
    auto compressed = BuildCompressedHistogram(cells, b);
    if (!maxdiff.ok() || !voptimal.ok() || !compressed.ok()) return;
    const auto equi = EquiWidthPartition(cells, b);
    Rng qrng(100 + b);
    Rng qrng2(100 + b);
    Rng qrng3(100 + b);
    Rng qrng4(100 + b);
    // Compressed histograms use their own estimator; wrap it in the
    // common error loop by converting through a lambda-compatible shim.
    StreamingStats compressed_error;
    for (int q = 0; q < 400; ++q) {
      const int64_t width =
          1 + static_cast<int64_t>(qrng4.UniformU64(200));
      const int64_t lo = 1 + static_cast<int64_t>(qrng4.UniformU64(
                                 static_cast<uint64_t>(1000 - width)));
      const int64_t hi = lo + width - 1;
      const int lo_cell = cell_spec.BucketOf(lo);
      const int hi_cell = cell_spec.BucketOf(hi);
      const double estimate =
          EstimateRangeFromCompressed(*compressed, lo_cell, hi_cell);
      const double truth = static_cast<double>(relation.CountValueRange(
          cell_spec.BucketBounds(lo_cell).first,
          cell_spec.BucketBounds(hi_cell).second));
      if (truth > 0) compressed_error.Add(RelativeError(estimate, truth));
    }
    PrintRow({std::to_string(b),
              FormatDouble(100 * RangeError(equi, cell_spec, relation, qrng),
                           1),
              FormatDouble(
                  100 * RangeError(*maxdiff, cell_spec, relation, qrng2), 1),
              FormatDouble(
                  100 * RangeError(*voptimal, cell_spec, relation, qrng3),
                  1),
              FormatDouble(100 * compressed_error.mean(), 1)},
             14);
  }
  std::printf("(the DHS sweep is shared by all types: %d hops for the 200 "
              "base cells)\n",
              reconstruction->cost.hops);
  PrintPaperNote("variable-width bucketizations squeeze more selectivity "
                 "accuracy out of the same distributed sweep — the "
                 "re-bucketization is a free local step");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
