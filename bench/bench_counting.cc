// E2 — Table 2 "Counting costs (sLL/PCSA)".
//
// Paper (N = 1024, k = 24, four relations, per-count averages):
//   m     nodes visited   hops        BW (kBytes)   error (%)
//   128   68 / 65         86 / 69     11.0 / 8.8    5.0 / 5.8
//   256   73 / 69         92 / 77     11.8 / 9.6    3.5 / 4.3
//   512   81 / 80         120 / 114   15.4 / 15.9   1.8 / 2.7
//   1024  96 / 91         139 / 128   17.8 / 16.0   1.1 / 7.5
//
// For each m this binary populates a fresh DHS with Q/R/S/T and issues
// counts from random nodes with both estimators (insertion state is
// estimator-agnostic, §3).

#include <cstdio>

#include "common/check.h"
#include "bench_util.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int counts_per_relation = EnvInt("DHS_COUNTS", 8);
  PrintHeader("E2 (Table 2): counting costs, sLL/PCSA",
              "N=" + std::to_string(nodes) + ", k=24, scale=" +
                  FormatDouble(scale, 3));
  PrintRow({"m", "visited", "hops", "BW(kB)", "error(%)"});

  const auto specs = PaperRelationSpecs(scale);
  for (int m : {128, 256, 512, 1024}) {
    auto net = MakeNetwork(nodes, 1);
    DhsConfig config;
    config.k = 24;
    config.m = m;
    auto client_or = DhsClient::Create(net.get(), config);
    CHECK_OK(client_or);
    DhsClient sll = std::move(client_or).value();
    config.estimator = DhsEstimator::kPcsa;
    auto pcsa_or = DhsClient::Create(net.get(), config);
    CHECK_OK(pcsa_or);
    DhsClient pcsa = std::move(pcsa_or).value();

    Rng rng(100 + m);
    std::vector<uint64_t> truths;
    for (size_t i = 0; i < specs.size(); ++i) {
      const Relation relation =
          RelationGenerator::Generate(specs[i], 10 + i);
      (void)PopulateRelation(*net, sll, relation, RelationMetric(i), rng);
      truths.push_back(relation.NumTuples());
    }

    CountingCostSummary sll_summary;
    CountingCostSummary pcsa_summary;
    for (size_t i = 0; i < specs.size(); ++i) {
      for (int t = 0; t < counts_per_relation; ++t) {
        auto a = sll.Count(net->RandomNode(rng), RelationMetric(i), rng);
        auto b = pcsa.Count(net->RandomNode(rng), RelationMetric(i), rng);
        if (a.ok()) {
          sll_summary.Add(a->cost, a->estimate,
                          static_cast<double>(truths[i]));
        }
        if (b.ok()) {
          pcsa_summary.Add(b->cost, b->estimate,
                           static_cast<double>(truths[i]));
        }
      }
    }
    auto cell = [](double sll_value, double pcsa_value, int digits) {
      return FormatDouble(sll_value, digits) + " / " +
             FormatDouble(pcsa_value, digits);
    };
    PrintRow({std::to_string(m),
              cell(sll_summary.nodes_visited.mean(),
                   pcsa_summary.nodes_visited.mean(), 0),
              cell(sll_summary.hops.mean(), pcsa_summary.hops.mean(), 0),
              cell(sll_summary.bytes.mean() / 1024.0,
                   pcsa_summary.bytes.mean() / 1024.0, 1),
              cell(100 * sll_summary.error.mean(),
                   100 * pcsa_summary.error.mean(), 1)});
  }
  PrintPaperNote("m=512 row: 81/80 visited, 120/114 hops, 15.4/15.9 kB, "
                 "1.8/2.7 % error");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
