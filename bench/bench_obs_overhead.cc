// P3 — observability overhead guard (not a paper experiment).
//
// Times the two hot operations every experiment is built from — routed
// Lookup and DhsClient::Insert — in three observability modes:
//
//   off       no tracer / no metrics attached (the seed configuration)
//   disabled  tracer attached but set_enabled(false): the null-sink
//             branch every call site pays when tracing is compiled in
//   enabled   tracer + metrics registry recording everything
//
// The acceptance bar this repo holds (see ISSUE/DESIGN "Observability"):
// `disabled` within 2% of `off` — attaching an idle tracer must cost
// one predictable branch, nothing more. `enabled` is reported for
// context only; it allocates and is expected to be slower.
//
// Writes BENCH_obs_overhead.json (override with DHS_OBS_JSON). Knobs:
// DHS_OBS_NODES (default 1024), DHS_OBS_LOOKUPS, DHS_OBS_INSERTS.
//
// tests/obs/overhead_test.cc pins the allocation side of the same
// contract (zero allocations on the disabled path); this binary is the
// time side, tracked across PRs like BENCH_dht_core.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dhs {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct ObsResult {
  std::string op;
  std::string mode;
  long iters = 0;
  double ns_per_op = 0.0;
  uint64_t checksum = 0;
};

enum class Mode { kOff, kDisabled, kEnabled };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kDisabled: return "disabled";
    case Mode::kEnabled: return "enabled";
  }
  return "?";
}

double ElapsedNs(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// One mode's measurement world: fresh overlay + client so modes never
/// share warmed caches unevenly; same seeds so they do identical work.
struct World {
  std::unique_ptr<ChordNetwork> net;
  std::unique_ptr<DhsClient> client;
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<MetricsRegistry> metrics;
};

World MakeWorld(int nodes, Mode mode) {
  World world;
  world.net = MakeNetwork(nodes, 1);
  if (mode != Mode::kOff) {
    world.tracer = std::make_unique<Tracer>();
    world.tracer->set_enabled(mode == Mode::kEnabled);
    world.net->AttachTracer(world.tracer.get());
    if (mode == Mode::kEnabled) {
      world.metrics = std::make_unique<MetricsRegistry>();
      world.net->AttachMetrics(world.metrics.get());
    }
  }
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  auto client = DhsClient::Create(world.net.get(), config);
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    std::exit(1);
  }
  world.client = std::make_unique<DhsClient>(std::move(client.value()));
  return world;
}

ObsResult BenchLookup(World& world, Mode mode, long iters) {
  const std::vector<uint64_t> ids = world.net->NodeIds();
  Rng warm(771);
  for (long i = 0; i < 1000; ++i) {
    (void)world.net->Lookup(ids[warm.UniformU64(ids.size())], warm.Next(),
                            16);
  }
  Rng rng(2024);
  std::vector<uint64_t> froms(static_cast<size_t>(iters));
  std::vector<uint64_t> keys(static_cast<size_t>(iters));
  for (long i = 0; i < iters; ++i) {
    froms[static_cast<size_t>(i)] = ids[rng.UniformU64(ids.size())];
    keys[static_cast<size_t>(i)] = rng.Next();
  }
  // Repeat the whole pass and keep the fastest: the minimum is the
  // noise-robust estimator for a deterministic workload (anything
  // above it is scheduler/cache interference, not the code).
  const int repeats = EnvInt("DHS_OBS_REPEATS", 5);
  uint64_t checksum = 0;
  double best_ns = 0.0;
  for (int pass = 0; pass < repeats; ++pass) {
    if (world.tracer != nullptr) world.tracer->Clear();
    uint64_t pass_checksum = 0;
    const auto t0 = Clock::now();
    for (long i = 0; i < iters; ++i) {
      auto result = world.net->Lookup(froms[static_cast<size_t>(i)],
                                      keys[static_cast<size_t>(i)], 16);
      if (result.ok()) pass_checksum ^= result->node + result->hops;
    }
    const double ns = ElapsedNs(t0);
    if (pass == 0 || ns < best_ns) best_ns = ns;
    checksum = pass_checksum;
  }
  return {"lookup", ModeName(mode), iters,
          best_ns / static_cast<double>(iters), checksum};
}

ObsResult BenchInsert(World& world, Mode mode, long iters) {
  Rng rng(4242);
  std::vector<uint64_t> origins(static_cast<size_t>(iters));
  std::vector<uint64_t> items(static_cast<size_t>(iters));
  for (long i = 0; i < iters; ++i) {
    origins[static_cast<size_t>(i)] = world.net->RandomNode(rng);
    items[static_cast<size_t>(i)] = rng.Next();
  }
  // Min-of-repeats, as in BenchLookup. Re-inserting the same items is
  // idempotent store traffic, so passes do identical routing work; the
  // per-pass rng only drives replica placement and is re-seeded so
  // every pass draws the same stream.
  const int repeats = EnvInt("DHS_OBS_REPEATS", 5);
  uint64_t checksum = 0;
  double best_ns = 0.0;
  for (int pass = 0; pass < repeats; ++pass) {
    if (world.tracer != nullptr) world.tracer->Clear();
    Rng pass_rng(7);
    uint64_t pass_checksum = 0;
    const auto t0 = Clock::now();
    for (long i = 0; i < iters; ++i) {
      auto cost = world.client->Insert(origins[static_cast<size_t>(i)], 1,
                                       items[static_cast<size_t>(i)],
                                       pass_rng);
      if (cost.ok()) pass_checksum += static_cast<uint64_t>(cost->hops);
    }
    const double ns = ElapsedNs(t0);
    if (pass == 0 || ns < best_ns) best_ns = ns;
    checksum = pass_checksum;
  }
  return {"insert", ModeName(mode), iters,
          best_ns / static_cast<double>(iters), checksum};
}

bool WriteJson(const std::string& path, const std::vector<ObsResult>& results,
               double lookup_overhead_pct, double insert_overhead_pct) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"obs_overhead\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ObsResult& r = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"mode\": \"%s\", \"iters\": %ld, "
                 "\"ns_per_op\": %.1f, \"checksum\": %llu}%s\n",
                 r.op.c_str(), r.mode.c_str(), r.iters, r.ns_per_op,
                 static_cast<unsigned long long>(r.checksum),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"disabled_overhead_pct\": "
               "{\"lookup\": %.2f, \"insert\": %.2f}\n}\n",
               lookup_overhead_pct, insert_overhead_pct);
  std::fclose(f);
  return true;
}

double OverheadPct(double base_ns, double measured_ns) {
  return base_ns <= 0.0 ? 0.0 : (measured_ns / base_ns - 1.0) * 100.0;
}

void Run() {
  const int nodes = EnvInt("DHS_OBS_NODES", 1024);
  const long lookups = EnvInt("DHS_OBS_LOOKUPS", 20000);
  const long inserts = EnvInt("DHS_OBS_INSERTS", 5000);
  // Read before any worker thread exists; nothing calls setenv.
  const char* json_env = std::getenv("DHS_OBS_JSON");  // NOLINT(concurrency-mt-unsafe)
  const std::string json_path = json_env != nullptr && json_env[0] != '\0'
                                    ? json_env
                                    : "BENCH_obs_overhead.json";

  PrintHeader("P3: observability overhead (off / disabled / enabled)",
              "nodes=" + std::to_string(nodes) +
                  ", lookups=" + std::to_string(lookups) +
                  ", inserts=" + std::to_string(inserts));
  PrintRow({"op", "mode", "iters", "ns/op", "checksum"});

  std::vector<ObsResult> results;
  for (Mode mode : {Mode::kOff, Mode::kDisabled, Mode::kEnabled}) {
    World world = MakeWorld(nodes, mode);
    results.push_back(BenchLookup(world, mode, lookups));
    results.push_back(BenchInsert(world, mode, inserts));
    for (size_t i = results.size() - 2; i < results.size(); ++i) {
      const ObsResult& r = results[i];
      PrintRow({r.op, r.mode, std::to_string(r.iters),
                FormatDouble(r.ns_per_op, 1), std::to_string(r.checksum)});
    }
  }
  // results layout: [lookup/off, insert/off, lookup/disabled,
  // insert/disabled, lookup/enabled, insert/enabled].
  const double lookup_pct =
      OverheadPct(results[0].ns_per_op, results[2].ns_per_op);
  const double insert_pct =
      OverheadPct(results[1].ns_per_op, results[3].ns_per_op);
  std::printf("disabled-vs-off overhead: lookup %+.2f%%, insert %+.2f%%\n",
              lookup_pct, insert_pct);
  // Identical work across modes: checksums must agree pairwise, or the
  // timing comparison is comparing different routing.
  if (results[0].checksum != results[2].checksum ||
      results[0].checksum != results[4].checksum ||
      results[1].checksum != results[3].checksum ||
      results[1].checksum != results[5].checksum) {
    std::fprintf(stderr, "checksum mismatch across modes\n");
    std::exit(1);
  }
  if (WriteJson(json_path, results, lookup_pct, insert_pct)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
