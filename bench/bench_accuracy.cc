// E4 — "Accuracy" (§5.2).
//
// Paper: with lim = 5, average error is ~2.9% (PCSA) / ~5% (sLL) for up
// to 2048 (resp. 1024) bitmaps; beyond m = 4096 the retry limit no
// longer finds set bits reliably and accuracy collapses — ~15% (sLL)
// vs ~44% (PCSA), sLL degrading more gracefully because it probes
// higher-order bits (denser intervals) first.
//
// This binary sweeps m and prints mean |error| for both estimators,
// averaged over DHS_TRIALS independent seeded trials per point. The
// (m, trial) units are fully independent — each builds its own overlay
// and clients — so they run in parallel across DHS_THREADS workers via
// RunTrials; aggregation is by trial index, making the printed rows
// bit-identical at every thread count.

#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "bench_util.h"

namespace dhs {
namespace bench {
namespace {

/// Per-(m, trial) result: one summary per estimator.
struct AccuracyPoint {
  CountingCostSummary sll;
  CountingCostSummary pcsa;
  CountingCostSummary hll;
};

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int counts = EnvInt("DHS_COUNTS", 10);
  const int trials = TrialCount();
  const int threads = TrialThreads();
  PrintHeader("E4: estimation error vs number of bitmaps",
              "N=" + std::to_string(nodes) + ", k=24, lim=5, relation S, "
              "scale=" + FormatDouble(scale, 3) + ", trials=" +
              std::to_string(trials));
  PrintRow({"m", "err% sLL", "err% PCSA", "err% HLL", "visited sLL",
            "visited PCSA"});

  RelationSpec spec = PaperRelationSpecs(scale)[2];  // S: 40M * scale
  // Generated once and shared read-only: Relation mutates nothing after
  // construction, so concurrent trials may read it.
  const Relation relation = RelationGenerator::Generate(spec, 12);
  const std::vector<int> ms = {64, 128, 256, 512, 1024, 2048, 4096};

  const auto start = std::chrono::steady_clock::now();
  const int units = static_cast<int>(ms.size()) * trials;
  const auto points = RunTrials(
      units, /*seed_base=*/300, threads,
      [&](int unit, Rng& rng) -> AccuracyPoint {
        const int m = ms[static_cast<size_t>(unit / trials)];
        auto net = MakeNetwork(nodes, rng.Next());
        DhsConfig config;
        config.k = 24;
        config.m = m;
        auto sll_or = DhsClient::Create(net.get(), config);
        CHECK_OK(sll_or);
        DhsClient sll = std::move(sll_or).value();
        config.estimator = DhsEstimator::kPcsa;
        auto pcsa_or = DhsClient::Create(net.get(), config);
        CHECK_OK(pcsa_or);
        DhsClient pcsa = std::move(pcsa_or).value();
        config.estimator = DhsEstimator::kHyperLogLog;
        auto hll_or = DhsClient::Create(net.get(), config);
        CHECK_OK(hll_or);
        DhsClient hll = std::move(hll_or).value();

        (void)PopulateRelation(*net, sll, relation, 1, rng);

        AccuracyPoint point;
        const double truth = static_cast<double>(relation.NumTuples());
        for (int t = 0; t < counts; ++t) {
          auto a = sll.Count(net->RandomNode(rng), 1, rng);
          auto b = pcsa.Count(net->RandomNode(rng), 1, rng);
          auto c = hll.Count(net->RandomNode(rng), 1, rng);
          if (a.ok()) point.sll.Add(a->cost, a->estimate, truth);
          if (b.ok()) point.pcsa.Add(b->cost, b->estimate, truth);
          if (c.ok()) point.hll.Add(c->cost, c->estimate, truth);
        }
        return point;
      });

  for (size_t mi = 0; mi < ms.size(); ++mi) {
    AccuracyPoint agg;
    for (int t = 0; t < trials; ++t) {
      const auto& p = points[mi * static_cast<size_t>(trials) +
                             static_cast<size_t>(t)];
      agg.sll.Merge(p.sll);
      agg.pcsa.Merge(p.pcsa);
      agg.hll.Merge(p.hll);
    }
    PrintRow({std::to_string(ms[mi]),
              FormatDouble(100 * agg.sll.error.mean(), 1),
              FormatDouble(100 * agg.pcsa.error.mean(), 1),
              FormatDouble(100 * agg.hll.error.mean(), 1),
              FormatDouble(agg.sll.nodes_visited.mean(), 0),
              FormatDouble(agg.pcsa.nodes_visited.mean(), 0)});
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PrintRunnerFooter(trials, threads, wall);
  PrintPaperNote("~5% sLL / ~2.9% PCSA up to m~1024-2048; at m=4096 "
                 "~15% sLL vs ~44% PCSA (lim=5 insufficient)");
  PrintPaperNote("the collapse threshold scales with n/(m*N): at reduced "
                 "DHS_SCALE it appears at proportionally smaller m");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
