// E4 — "Accuracy" (§5.2).
//
// Paper: with lim = 5, average error is ~2.9% (PCSA) / ~5% (sLL) for up
// to 2048 (resp. 1024) bitmaps; beyond m = 4096 the retry limit no
// longer finds set bits reliably and accuracy collapses — ~15% (sLL)
// vs ~44% (PCSA), sLL degrading more gracefully because it probes
// higher-order bits (denser intervals) first.
//
// This binary sweeps m and prints mean |error| for both estimators.

#include <cstdio>

#include "bench_util.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int counts = EnvInt("DHS_COUNTS", 10);
  PrintHeader("E4: estimation error vs number of bitmaps",
              "N=" + std::to_string(nodes) + ", k=24, lim=5, relation S, "
              "scale=" + FormatDouble(scale, 3));
  PrintRow({"m", "err% sLL", "err% PCSA", "err% HLL", "visited sLL",
            "visited PCSA"});

  RelationSpec spec = PaperRelationSpecs(scale)[2];  // S: 40M * scale
  const Relation relation = RelationGenerator::Generate(spec, 12);
  for (int m : {64, 128, 256, 512, 1024, 2048, 4096}) {
    auto net = MakeNetwork(nodes, 1);
    DhsConfig config;
    config.k = 24;
    config.m = m;
    DhsClient sll = std::move(DhsClient::Create(net.get(), config).value());
    config.estimator = DhsEstimator::kPcsa;
    DhsClient pcsa =
        std::move(DhsClient::Create(net.get(), config).value());
    config.estimator = DhsEstimator::kHyperLogLog;
    DhsClient hll = std::move(DhsClient::Create(net.get(), config).value());

    Rng rng(300 + m);
    (void)PopulateRelation(*net, sll, relation, 1, rng);

    CountingCostSummary sll_summary;
    CountingCostSummary pcsa_summary;
    CountingCostSummary hll_summary;
    for (int t = 0; t < counts; ++t) {
      auto a = sll.Count(net->RandomNode(rng), 1, rng);
      auto b = pcsa.Count(net->RandomNode(rng), 1, rng);
      auto c = hll.Count(net->RandomNode(rng), 1, rng);
      if (a.ok()) {
        sll_summary.Add(a->cost, a->estimate,
                        static_cast<double>(relation.NumTuples()));
      }
      if (b.ok()) {
        pcsa_summary.Add(b->cost, b->estimate,
                         static_cast<double>(relation.NumTuples()));
      }
      if (c.ok()) {
        hll_summary.Add(c->cost, c->estimate,
                        static_cast<double>(relation.NumTuples()));
      }
    }
    PrintRow({std::to_string(m),
              FormatDouble(100 * sll_summary.error.mean(), 1),
              FormatDouble(100 * pcsa_summary.error.mean(), 1),
              FormatDouble(100 * hll_summary.error.mean(), 1),
              FormatDouble(sll_summary.nodes_visited.mean(), 0),
              FormatDouble(pcsa_summary.nodes_visited.mean(), 0)});
  }
  PrintPaperNote("~5% sLL / ~2.9% PCSA up to m~1024-2048; at m=4096 "
                 "~15% sLL vs ~44% PCSA (lim=5 insufficient)");
  PrintPaperNote("the collapse threshold scales with n/(m*N): at reduced "
                 "DHS_SCALE it appears at proportionally smaller m");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
