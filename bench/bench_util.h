// Shared scaffolding for the experiment harness. Every bench binary
// reproduces one table or figure of the paper (see DESIGN.md); this
// header provides the paper's §5.1 testbed: a 1024-node Chord overlay,
// the four relations Q/R/S/T (10/20/40/80M tuples, Zipf theta = 0.7,
// 1 kB tuples), and helpers to spread tuples over nodes and feed them
// into a DHS.
//
// The workload is scaled by DHS_SCALE (default 0.1, i.e. 1M..8M tuples):
// all reported costs are per-operation and the sketch error depends on m,
// not n, so shapes are preserved (DESIGN.md "substitutions"). Run with
// DHS_SCALE=1 for the paper's full sizes.

#ifndef DHS_BENCH_BENCH_UTIL_H_
#define DHS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "dhs/client.h"
#include "dht/chord.h"
#include "histogram/dhs_histogram.h"
#include "relation/relation.h"

namespace dhs {
namespace bench {

/// Environment override helpers (DHS_SCALE, DHS_NODES, ...).
double EnvDouble(const char* name, double fallback);
int EnvInt(const char* name, int fallback);

/// The global workload scale factor (DHS_SCALE, default 0.1).
double WorkloadScale();

/// Independent seeded trials per sweep point (DHS_TRIALS, default
/// `fallback`). Trials run in parallel through RunTrials
/// (common/thread_pool.h) and aggregate in trial-index order, so the
/// printed rows are identical at every thread count.
int TrialCount(int fallback = 1);

/// Worker threads for the trial runner (DHS_THREADS, default: hardware
/// concurrency).
int TrialThreads();

/// Prints the standard "trials=T threads=J wall=S" footer of a
/// parallel sweep.
void PrintRunnerFooter(int trials, int threads, double wall_seconds);

/// Builds an N-node overlay with MixHasher-derived node IDs (MD4 gives
/// identical distributions but is ~20x slower; pass hasher = "md4" to use
/// the paper's exact hash).
std::unique_ptr<ChordNetwork> MakeNetwork(int nodes, uint64_t seed,
                                          const std::string& hasher = "mix");

/// The paper's relation specs at the given scale: Q/R/S/T with
/// 10/20/40/80 million tuples, single Zipf(0.7) attribute over
/// [1, 1000], 1 kB tuples.
std::vector<RelationSpec> PaperRelationSpecs(double scale);

/// Metric IDs used for relation cardinalities: Q=1, R=2, S=3, T=4.
inline uint64_t RelationMetric(size_t index) { return index + 1; }

/// Inserts every tuple of `relation` into the DHS under `metric`,
/// assigning tuples uniformly to nodes and bulk-inserting per node
/// (§3.2). Returns the network-stat delta of the insertion phase.
MessageStats PopulateRelation(DhtNetwork& net, DhsClient& client,
                              const Relation& relation, uint64_t metric,
                              Rng& rng);

/// Same, but records tuples into a DhsHistogram (per-bucket metrics).
MessageStats PopulateHistogram(DhtNetwork& net, DhsHistogram& histogram,
                               const Relation& relation, Rng& rng);

/// Pretty-printing: fixed-width table rows matching the paper's layout.
void PrintHeader(const std::string& title, const std::string& setup);
void PrintRow(const std::vector<std::string>& cells, int width = 14);
void PrintPaperNote(const std::string& note);

/// Aggregated counting-cost statistics over repeated runs.
struct CountingCostSummary {
  StreamingStats nodes_visited;
  StreamingStats hops;
  StreamingStats bytes;
  StreamingStats error;  // relative error per count

  void Add(const DhsCostReport& cost, double estimate, double truth);

  /// Parallel-trial aggregation; call in trial-index order so the
  /// merged stats are independent of scheduling.
  void Merge(const CountingCostSummary& other);
};

}  // namespace bench
}  // namespace dhs

#endif  // DHS_BENCH_BENCH_UTIL_H_
