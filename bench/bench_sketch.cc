// A3 — Microbenchmarks for the sketch kernels (google-benchmark).
//
// Measures the local building blocks that every DHS operation rests on:
// AddHash throughput, estimation latency, merge, serialization, and the
// MD4 vs SplitMix64 hashing cost that motivates the "mix" default in
// the simulator.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "hashing/hasher.h"
#include "hashing/md4.h"
#include "sketch/loglog.h"
#include "sketch/pcsa.h"

namespace dhs {
namespace {

void BM_PcsaAddHash(benchmark::State& state) {
  PcsaSketch sketch(static_cast<int>(state.range(0)), 24);
  Rng rng(1);
  for (auto _ : state) {
    sketch.AddHash(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcsaAddHash)->Arg(64)->Arg(512)->Arg(4096);

void BM_LogLogAddHash(benchmark::State& state) {
  LogLogSketch sketch(static_cast<int>(state.range(0)), 24);
  Rng rng(1);
  for (auto _ : state) {
    sketch.AddHash(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogLogAddHash)->Arg(64)->Arg(512)->Arg(4096);

void BM_PcsaEstimate(benchmark::State& state) {
  PcsaSketch sketch(static_cast<int>(state.range(0)), 24);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) sketch.AddHash(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate());
  }
}
BENCHMARK(BM_PcsaEstimate)->Arg(64)->Arg(512)->Arg(4096);

void BM_SuperLogLogEstimate(benchmark::State& state) {
  LogLogSketch sketch(static_cast<int>(state.range(0)), 24);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) sketch.AddHash(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate());
  }
}
BENCHMARK(BM_SuperLogLogEstimate)->Arg(64)->Arg(512)->Arg(4096);

void BM_PcsaMerge(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  PcsaSketch a(m, 24);
  PcsaSketch b(m, 24);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    a.AddHash(rng.Next());
    b.AddHash(rng.Next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Merge(b));
  }
}
BENCHMARK(BM_PcsaMerge)->Arg(64)->Arg(512)->Arg(4096);

void BM_SketchSerialize(benchmark::State& state) {
  LogLogSketch sketch(static_cast<int>(state.range(0)), 24);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) sketch.AddHash(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Serialize());
  }
}
BENCHMARK(BM_SketchSerialize)->Arg(512);

void BM_Md4HashU64(benchmark::State& state) {
  Md4Hasher hasher;
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.HashU64(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Md4HashU64);

void BM_MixHashU64(benchmark::State& state) {
  MixHasher hasher;
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.HashU64(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MixHashU64);

}  // namespace
}  // namespace dhs

BENCHMARK_MAIN();
