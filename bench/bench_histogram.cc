// E5 — Table 3 "Histogram building costs (sLL/PCSA)".
//
// Paper (100-bucket equi-width histograms over Q/R/S/T, per
// reconstruction):
//   m     nodes visited   hops        BW (MBytes)
//   128   69 / 67         89 / 72     1.1 / 0.9
//   256   73 / 70         94 / 80     1.2 / 1.0
//   512   79 / 81         118 / 108   1.5 / 1.4
//   1024  94 / 89         142 / 131   1.8 / 1.7
//
// Note the headline property: reconstructing all 100 buckets costs the
// same hop count as estimating a single cardinality (§4.2/§4.3).

#include <cstdio>

#include "common/check.h"
#include "bench_util.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  // Histograms multiply the stored state by the bucket count, so the
  // default scale is smaller; hop costs are n-insensitive, response
  // bytes grow with bucket occupancy (i.e. with scale).
  const double scale = EnvDouble("DHS_SCALE", 0.05);
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int reconstructions = EnvInt("DHS_COUNTS", 3);
  PrintHeader("E5 (Table 3): histogram building costs, sLL/PCSA",
              "N=" + std::to_string(nodes) +
                  ", k=24, 100 buckets, 4 relations, scale=" +
                  FormatDouble(scale, 3));
  PrintRow({"m", "visited", "hops", "BW(MB)"});

  const auto specs = PaperRelationSpecs(scale);
  const HistogramSpec hspec(1, 1000, 100);
  for (int m : {128, 256, 512, 1024}) {
    auto net = MakeNetwork(nodes, 1);
    DhsConfig config;
    config.k = 24;
    config.m = m;
    auto sll_or = DhsClient::Create(net.get(), config);
    CHECK_OK(sll_or);
    DhsClient sll = std::move(sll_or).value();
    config.estimator = DhsEstimator::kPcsa;
    auto pcsa_or = DhsClient::Create(net.get(), config);
    CHECK_OK(pcsa_or);
    DhsClient pcsa = std::move(pcsa_or).value();

    Rng rng(400 + m);
    std::vector<DhsHistogram> sll_hists;
    std::vector<DhsHistogram> pcsa_hists;
    for (size_t i = 0; i < specs.size(); ++i) {
      const Relation relation =
          RelationGenerator::Generate(specs[i], 10 + i);
      sll_hists.emplace_back(&sll, hspec, 700 + i);
      pcsa_hists.emplace_back(&pcsa, hspec, 700 + i);  // same metrics
      (void)PopulateHistogram(*net, sll_hists.back(), relation, rng);
    }

    CountingCostSummary sll_summary;
    CountingCostSummary pcsa_summary;
    for (int t = 0; t < reconstructions; ++t) {
      for (size_t i = 0; i < specs.size(); ++i) {
        auto a = sll_hists[i].Reconstruct(net->RandomNode(rng), rng);
        auto b = pcsa_hists[i].Reconstruct(net->RandomNode(rng), rng);
        if (a.ok()) sll_summary.Add(a->cost, 0, 1);
        if (b.ok()) pcsa_summary.Add(b->cost, 0, 1);
      }
    }
    auto cell = [](double sll_value, double pcsa_value, int digits) {
      return FormatDouble(sll_value, digits) + " / " +
             FormatDouble(pcsa_value, digits);
    };
    PrintRow({std::to_string(m),
              cell(sll_summary.nodes_visited.mean(),
                   pcsa_summary.nodes_visited.mean(), 0),
              cell(sll_summary.hops.mean(), pcsa_summary.hops.mean(), 0),
              cell(sll_summary.bytes.mean() / (1024.0 * 1024.0),
                   pcsa_summary.bytes.mean() / (1024.0 * 1024.0), 2)});
  }
  PrintPaperNote("m=512 row: 79/81 visited, 118/108 hops, 1.5/1.4 MB");
  PrintPaperNote("hop cost matches single-cardinality counting (Table 2): "
                 "bucket count only inflates bytes, not hops");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
