// E8 — Baseline comparison (qualitative claims of §1 "Related Work",
// made quantitative).
//
// One metric (distinct count of a shared-item workload), five counting
// mechanisms on the same 1024-node overlay:
//   * DHS-sLL / DHS-PCSA (this paper);
//   * one-node-per-counter (exact-set variant);
//   * gossip (push-sum and PCSA-sketch anti-entropy);
//   * broadcast/convergecast with PCSA sketches (Considine et al.);
//   * random node sampling.
// Reported per *query*: hops, bytes, and error — plus the per-update
// load concentration that rules the central counter out.

#include <cstdio>
#include <set>

#include "common/check.h"
#include "baselines/central_counter.h"
#include "baselines/convergecast.h"
#include "baselines/gossip.h"
#include "baselines/sampling.h"
#include "bench_util.h"
#include "hashing/hasher.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const int nodes = EnvInt("DHS_NODES", 1024);
  const double scale = WorkloadScale();
  const uint64_t items_per_node =
      static_cast<uint64_t>(2000 * scale / 0.1);
  PrintHeader("E8: DHS vs related-work baselines",
              "N=" + std::to_string(nodes) + ", ~" +
                  std::to_string(items_per_node) +
                  " items/node, 20% shared duplicates, m=512/k=24");

  auto net = MakeNetwork(nodes, 1);
  Rng rng(2);

  // Workload: per-node local items, 20% drawn from a shared pool
  // (duplicates across nodes).
  LocalItems local_items;
  std::set<uint64_t> distinct;
  const uint64_t shared_pool =
      std::max<uint64_t>(1, items_per_node * nodes / 10);
  for (uint64_t node : net->NodeIds()) {
    auto& items = local_items[node];
    for (uint64_t i = 0; i < items_per_node; ++i) {
      uint64_t id;
      if (rng.Bernoulli(0.2)) {
        id = SplitMix64(rng.UniformU64(shared_pool));
      } else {
        id = SplitMix64((node << 20) ^ i ^ 0xf00d);
      }
      items.push_back(id);
      distinct.insert(id);
    }
  }
  const double truth = static_cast<double>(distinct.size());
  std::printf("true distinct count: %.0f (total with duplicates: %llu)\n",
              truth,
              static_cast<unsigned long long>(items_per_node * nodes));

  PrintRow({"mechanism", "hops/query", "kB/query", "err%", "dup-safe"},
           18);
  auto report = [&](const std::string& name, double estimate,
                    const MessageStats& delta, bool dup_safe) {
    PrintRow({name, FormatDouble(static_cast<double>(delta.hops), 0),
              FormatDouble(static_cast<double>(delta.bytes) / 1024.0, 1),
              FormatDouble(100 * RelativeError(estimate, truth), 1),
              dup_safe ? "yes" : "no"},
             18);
  };

  // --- DHS (both estimators). Items inserted once; queries are cheap.
  {
    DhsConfig config;
    config.k = 24;
    config.m = 512;
    auto sll_or = DhsClient::Create(net.get(), config);
    CHECK_OK(sll_or);
    DhsClient sll = std::move(sll_or).value();
    config.estimator = DhsEstimator::kPcsa;
    auto pcsa_or = DhsClient::Create(net.get(), config);
    CHECK_OK(pcsa_or);
    DhsClient pcsa = std::move(pcsa_or).value();
    for (const auto& [node, items] : local_items) {
      // Live origins only; failures would skew the printed estimates.
      (void)sll.InsertBatch(node, 1, items, rng);
    }
    net->ResetStats();
    auto a = sll.Count(net->RandomNode(rng), 1, rng);
    MessageStats delta = net->stats();
    if (a.ok()) report("DHS-sLL", a->estimate, delta, true);
    net->ResetStats();
    auto b = pcsa.Count(net->RandomNode(rng), 1, rng);
    delta = net->stats();
    if (b.ok()) report("DHS-PCSA", b->estimate, delta, true);
  }

  // --- One-node-per-counter (exact set). Query is one lookup, but every
  // update hit a single node (shown separately below).
  {
    CentralCounter counter(net.get(), 0xc0ffee,
                           CentralCounter::Mode::kExactSet);
    net->ResetLoads();
    for (const auto& [node, items] : local_items) {
      // The central-counter baseline cannot fail on a live overlay.
      for (uint64_t item : items) (void)counter.Add(node, item);
    }
    uint64_t hottest = 0;
    for (const auto& [id, load] : net->Loads()) {
      hottest = std::max(hottest, load.stores);
    }
    net->ResetStats();
    auto value = counter.Read(net->RandomNode(rng));
    if (value.ok()) report("central-counter", *value, net->stats(), true);
    std::printf("  (central counter absorbed %llu store ops on ONE node; "
                "see bench_load_balance for the DHS distribution)\n",
                static_cast<unsigned long long>(hottest));
  }

  // --- Gossip.
  {
    PushSumGossip push_sum(net.get(), local_items);
    net->ResetStats();
    auto result = push_sum.Run(net->RandomNode(rng), 120, 1e-4, rng);
    if (result.ok()) {
      report("gossip push-sum", result->estimate, net->stats(), false);
      std::printf("  (converged after %d rounds; %.0f%% of nodes can "
                  "answer)\n",
                  result->rounds, 100 * result->converged_fraction);
    }
    SketchGossip sketch_gossip(net.get(), local_items, 512, 24);
    net->ResetStats();
    auto sres = sketch_gossip.Run(net->RandomNode(rng), 14, rng);
    if (sres.ok()) {
      report("gossip sketch", sres->estimate, net->stats(), true);
    }
  }

  // --- Broadcast/convergecast with PCSA sketches.
  {
    ConvergecastAggregator agg(net.get(), local_items);
    net->ResetStats();
    auto result = agg.Count(net->RandomNode(rng),
                            ConvergecastAggregator::Mode::kSketchPcsa, 512,
                            24);
    if (result.ok()) {
      report("convergecast", result->estimate, net->stats(), true);
    }
  }

  // --- Sampling.
  {
    SamplingEstimator estimator(net.get(), local_items);
    net->ResetStats();
    auto result = estimator.EstimateTotal(net->RandomNode(rng), 64, rng);
    if (result.ok()) {
      report("sampling (s=64)", result->estimate, net->stats(), false);
    }
  }

  PrintPaperNote("DHS is the only mechanism that is simultaneously "
                 "cheap per query (O(k log N) hops), duplicate-"
                 "insensitive, and load-balanced (§1 constraints 1-6)");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
