// E3 — "Scalability" (§5.2; the paper omits the figure for space).
//
// Paper: average counting hops grow from 109/97 (sLL/PCSA, N = 1024) to
// ~112/103 at N = 10240 — i.e. logarithmic routing growth buried under a
// constant interval-sweep cost. This binary sweeps N and prints the
// per-count hop average for both estimators over DHS_TRIALS independent
// seeded trials per overlay size, run in parallel across DHS_THREADS
// workers (the 10k-node populate dominates the sweep, so the smaller
// overlays ride along on other workers for free).

#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "bench_util.h"

namespace dhs {
namespace bench {
namespace {

struct ScalePoint {
  CountingCostSummary sll;
  CountingCostSummary pcsa;
};

void Run() {
  const double scale = WorkloadScale();
  const int counts = EnvInt("DHS_COUNTS", 12);
  const int trials = TrialCount();
  const int threads = TrialThreads();
  PrintHeader("E3: scalability — counting hops vs overlay size",
              "k=24, m=512, relation S, scale=" + FormatDouble(scale, 3) +
              ", trials=" + std::to_string(trials));
  PrintRow({"N", "hops sLL", "hops PCSA", "visited sLL", "visited PCSA"});

  RelationSpec spec = PaperRelationSpecs(scale)[2];  // S: 40M * scale
  // Shared read-only across trials (deeply const after generation).
  const Relation relation = RelationGenerator::Generate(spec, 12);
  const std::vector<int> overlay_sizes = {256, 1024, 4096, 10240};

  const auto start = std::chrono::steady_clock::now();
  const int units = static_cast<int>(overlay_sizes.size()) * trials;
  const auto points = RunTrials(
      units, /*seed_base=*/200, threads,
      [&](int unit, Rng& rng) -> ScalePoint {
        const int nodes = overlay_sizes[static_cast<size_t>(unit / trials)];
        auto net = MakeNetwork(nodes, rng.Next());
        DhsConfig config;
        config.k = 24;
        config.m = 512;
        auto sll_or = DhsClient::Create(net.get(), config);
        CHECK_OK(sll_or);
        DhsClient sll = std::move(sll_or).value();
        config.estimator = DhsEstimator::kPcsa;
        auto pcsa_or = DhsClient::Create(net.get(), config);
        CHECK_OK(pcsa_or);
        DhsClient pcsa = std::move(pcsa_or).value();

        (void)PopulateRelation(*net, sll, relation, 1, rng);

        ScalePoint point;
        const double truth = static_cast<double>(relation.NumTuples());
        for (int t = 0; t < counts; ++t) {
          auto a = sll.Count(net->RandomNode(rng), 1, rng);
          auto b = pcsa.Count(net->RandomNode(rng), 1, rng);
          if (a.ok()) point.sll.Add(a->cost, a->estimate, truth);
          if (b.ok()) point.pcsa.Add(b->cost, b->estimate, truth);
        }
        return point;
      });

  for (size_t ni = 0; ni < overlay_sizes.size(); ++ni) {
    ScalePoint agg;
    for (int t = 0; t < trials; ++t) {
      const auto& p = points[ni * static_cast<size_t>(trials) +
                             static_cast<size_t>(t)];
      agg.sll.Merge(p.sll);
      agg.pcsa.Merge(p.pcsa);
    }
    PrintRow({std::to_string(overlay_sizes[ni]),
              FormatDouble(agg.sll.hops.mean(), 0),
              FormatDouble(agg.pcsa.hops.mean(), 0),
              FormatDouble(agg.sll.nodes_visited.mean(), 0),
              FormatDouble(agg.pcsa.nodes_visited.mean(), 0)});
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PrintRunnerFooter(trials, threads, wall);
  PrintPaperNote("109/97 hops at N=1024 -> ~112/103 at N=10240 (sLL/PCSA)");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
