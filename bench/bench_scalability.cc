// E3 — "Scalability" (§5.2; the paper omits the figure for space).
//
// Paper: average counting hops grow from 109/97 (sLL/PCSA, N = 1024) to
// ~112/103 at N = 10240 — i.e. logarithmic routing growth buried under a
// constant interval-sweep cost. This binary sweeps N and prints the
// per-count hop average for both estimators.

#include <cstdio>

#include "bench_util.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const double scale = WorkloadScale();
  const int counts = EnvInt("DHS_COUNTS", 12);
  PrintHeader("E3: scalability — counting hops vs overlay size",
              "k=24, m=512, relation S, scale=" + FormatDouble(scale, 3));
  PrintRow({"N", "hops sLL", "hops PCSA", "visited sLL", "visited PCSA"});

  RelationSpec spec = PaperRelationSpecs(scale)[2];  // S: 40M * scale
  for (int nodes : {256, 1024, 4096, 10240}) {
    auto net = MakeNetwork(nodes, 1);
    DhsConfig config;
    config.k = 24;
    config.m = 512;
    DhsClient sll = std::move(DhsClient::Create(net.get(), config).value());
    config.estimator = DhsEstimator::kPcsa;
    DhsClient pcsa =
        std::move(DhsClient::Create(net.get(), config).value());

    Rng rng(200 + nodes);
    const Relation relation = RelationGenerator::Generate(spec, 12);
    (void)PopulateRelation(*net, sll, relation, 1, rng);

    CountingCostSummary sll_summary;
    CountingCostSummary pcsa_summary;
    for (int t = 0; t < counts; ++t) {
      auto a = sll.Count(net->RandomNode(rng), 1, rng);
      auto b = pcsa.Count(net->RandomNode(rng), 1, rng);
      if (a.ok()) {
        sll_summary.Add(a->cost, a->estimate,
                        static_cast<double>(relation.NumTuples()));
      }
      if (b.ok()) {
        pcsa_summary.Add(b->cost, b->estimate,
                         static_cast<double>(relation.NumTuples()));
      }
    }
    PrintRow({std::to_string(nodes),
              FormatDouble(sll_summary.hops.mean(), 0),
              FormatDouble(pcsa_summary.hops.mean(), 0),
              FormatDouble(sll_summary.nodes_visited.mean(), 0),
              FormatDouble(pcsa_summary.nodes_visited.mean(), 0)});
  }
  PrintPaperNote("109/97 hops at N=1024 -> ~112/103 at N=10240 (sLL/PCSA)");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
