// P5 — wire-format and transport microbenchmark (not a paper
// experiment).
//
// Times Encode/Decode for every frame type of dht/wire.h at
// representative sizes (the §5.1 message shapes: 12-byte probe opens,
// 8+2v probe responses, 8n-byte insertion groups), then drives an
// identical insert+count workload through the sim and loopback
// transports to price the AF_UNIX round trip per DHS operation.
//
// Like bench_dht_core, every loop folds its outputs into a printed
// checksum — identical checksums across two builds witness that a codec
// change did not alter any accepted byte stream — and results land in
// BENCH_wire.json (override with DHS_WIRE_JSON) for the perf
// trajectory.
//
// Knobs: DHS_WIRE_CODEC_ITERS (default 200000) sizes the codec loops,
// DHS_WIRE_ITEMS (default 20000) the transport workload.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "dht/loopback.h"
#include "dht/store.h"
#include "dht/transport.h"
#include "dht/wire.h"
#include "hashing/hasher.h"

namespace dhs {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0)
      .count();
}

struct WireResult {
  std::string op;
  long iters = 0;
  size_t frame_bytes = 0;
  double encode_ns = 0.0;
  double decode_ns = 0.0;
  uint64_t checksum = 0;
};

// Times `iters` rounds of encode(frame) then decode(bytes) and folds
// every encoded byte stream into the checksum. The decoded value is
// re-encoded once outside the timed region to assert canonicality.
template <typename Frame, typename Encoder, typename Decoder>
WireResult BenchCodec(const std::string& op, const Frame& frame,
                      Encoder encode, Decoder decode, long iters) {
  const std::string wire = encode(frame);
  uint64_t checksum = 0;

  const auto t0 = Clock::now();
  for (long i = 0; i < iters; ++i) {
    const std::string bytes = encode(frame);
    checksum += bytes.size();
    checksum ^= static_cast<uint64_t>(static_cast<uint8_t>(bytes.back()))
                << (i % 56);
  }
  const double encode_ns = ElapsedNs(t0);

  const auto t1 = Clock::now();
  for (long i = 0; i < iters; ++i) {
    auto decoded = decode(wire);
    if (decoded.ok()) ++checksum;
  }
  const double decode_ns = ElapsedNs(t1);

  auto decoded = decode(wire);
  CHECK_OK(decoded);
  CHECK(encode(*decoded) == wire) << op << " round trip is not canonical";

  return {op, iters, wire.size(),
          encode_ns / static_cast<double>(iters),
          decode_ns / static_cast<double>(iters), checksum};
}

std::vector<WireResult> RunCodecs(long iters) {
  std::vector<WireResult> results;

  ProbeOpenFrame probe;
  probe.target_key = 0x0123456789abcdefull;
  probe.bit = 17;
  results.push_back(BenchCodec("probe_open", probe, EncodeProbeOpen,
                               DecodeProbeOpen, iters));

  MetricQueryFrame query;
  query.metric_id = 42;
  query.bit = 9;
  results.push_back(BenchCodec("metric_query", query, EncodeMetricQuery,
                               DecodeMetricQuery, iters));

  for (size_t v : {4, 64}) {
    VectorResponseFrame response;
    response.metric_id = 42;
    for (size_t i = 0; i < v; ++i) {
      response.vector_ids.push_back(static_cast<int>(3 * i));
    }
    results.push_back(BenchCodec("vector_response/" + std::to_string(v),
                                 response, EncodeVectorResponse,
                                 DecodeVectorResponse, iters));
  }

  for (size_t n : {1, 32, 250}) {
    PutFrame put;
    put.dst_key = 0xfeedfaceull;
    put.metric_id = 7;
    put.expiry = 1000;
    for (size_t i = 0; i < n; ++i) {
      put.keys.push_back(
          StoreKey::Dhs(put.metric_id, static_cast<int>(i % 16),
                        static_cast<int>(i % 1024)));
    }
    results.push_back(BenchCodec("put/" + std::to_string(n), put,
                                 EncodePut, DecodePut, iters));
  }

  AckFrame ack;
  ack.code = 0;
  ack.node = 0xabcdull;
  ack.hops = 3;
  results.push_back(BenchCodec("ack", ack, EncodeAck, DecodeAck, iters));

  {
    MigrateFrame migrate;
    for (int i = 0; i < 64; ++i) {
      MigrateRecord record;
      record.dht_key = static_cast<uint64_t>(i) * 977;
      record.key = StoreKey::Dhs(9, i % 16, i % 1024);
      record.expires_at = kNoExpiry;
      record.value = std::string(16, static_cast<char>('a' + i % 26));
      migrate.records.push_back(record);
    }
    results.push_back(BenchCodec("migrate/64", migrate, EncodeMigrate,
                                 DecodeMigrate, iters / 8));
  }

  {
    CountRequestFrame request;
    request.metric_ids = {1, 2, 3, 4};
    results.push_back(BenchCodec("count_request/4", request,
                                 EncodeCountRequest, DecodeCountRequest,
                                 iters));
  }

  {
    CountResponseFrame response;
    response.bitmaps_unresolved = 1;
    for (int e = 0; e < 4; ++e) {
      CountResponseEntry entry;
      entry.estimate = 12345.5 * (e + 1);
      for (int i = 0; i < 24; ++i) entry.observables.push_back(i % 7 - 1);
      response.entries.push_back(entry);
    }
    results.push_back(BenchCodec("count_response/4x24", response,
                                 EncodeCountResponse, DecodeCountResponse,
                                 iters));
  }

  {
    SketchFrame sketch;
    sketch.family = kSketchFamilyHyperLogLog;
    sketch.payload = std::string(64, '\x05');
    results.push_back(BenchCodec("sketch/64B", sketch, EncodeSketch,
                                 DecodeSketch, iters));
  }

  return results;
}

// ---------------------------------------------------------------------------
// Transport round-trip cost: the identical insert+count workload over
// the in-process sim backend and over the AF_UNIX loopback pair. Both
// worlds use identically-seeded networks, so the workload (and every
// MessageStats charge) is the same — only the per-frame socket round
// trip differs.

struct TransportResult {
  std::string backend;
  double insert_us_per_item = 0.0;
  double count_us = 0.0;
  uint64_t messages = 0;
  uint64_t socket_bytes = 0;
};

TransportResult RunTransportWorkload(bool loopback, uint64_t items) {
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  config.replication = 2;

  ChordConfig chord;
  chord.hasher = "mix";
  ChordNetwork net(chord);
  Rng setup(20260808);
  for (int i = 0; i < 256; ++i) CHECK_OK(net.AddNode(setup.Next()));

  std::shared_ptr<LoopbackTransport> socket_transport;
  if (loopback) {
    socket_transport = std::make_shared<LoopbackTransport>(&net);
  }
  auto created = loopback
                     ? DhsClient::Create(&net, config, socket_transport)
                     : DhsClient::Create(&net, config);
  CHECK_OK(created);
  DhsClient client = std::move(created.value());

  Rng rng(31);
  MixHasher hasher(31);
  std::vector<uint64_t> batch;
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < items; ++i) {
    batch.push_back(hasher.HashU64(i));
    if (batch.size() == 250) {
      CHECK_OK(client.InsertBatch(net.RandomNode(rng), 7, batch, rng));
      batch.clear();
    }
  }
  if (!batch.empty()) {
    CHECK_OK(client.InsertBatch(net.RandomNode(rng), 7, batch, rng));
  }
  const double insert_ns = ElapsedNs(t0);

  const auto t1 = Clock::now();
  auto count = client.Count(net.RandomNode(rng), 7, rng);
  const double count_ns = ElapsedNs(t1);
  CHECK_OK(count);
  CHECK(count->estimate > 0.0);

  TransportResult result;
  result.backend = loopback ? "loopback" : "sim";
  result.insert_us_per_item =
      insert_ns / 1000.0 / static_cast<double>(items);
  result.count_us = count_ns / 1000.0;
  result.messages = net.stats().messages;
  result.socket_bytes = socket_transport == nullptr
                            ? 0
                            : socket_transport->socket_bytes_sent() +
                                  socket_transport->socket_bytes_received();
  return result;
}

bool WriteJson(const std::string& path,
               const std::vector<WireResult>& codecs,
               const std::vector<TransportResult>& transports) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"wire\",\n  \"codecs\": [\n");
  for (size_t i = 0; i < codecs.size(); ++i) {
    const WireResult& r = codecs[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"frame_bytes\": %zu, "
                 "\"encode_ns\": %.1f, \"decode_ns\": %.1f, "
                 "\"checksum\": %llu}%s\n",
                 r.op.c_str(), r.frame_bytes, r.encode_ns, r.decode_ns,
                 static_cast<unsigned long long>(r.checksum),
                 i + 1 < codecs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"transports\": [\n");
  for (size_t i = 0; i < transports.size(); ++i) {
    const TransportResult& r = transports[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"insert_us_per_item\": %.3f, "
                 "\"count_us\": %.1f, \"messages\": %llu, "
                 "\"socket_bytes\": %llu}%s\n",
                 r.backend.c_str(), r.insert_us_per_item, r.count_us,
                 static_cast<unsigned long long>(r.messages),
                 static_cast<unsigned long long>(r.socket_bytes),
                 i + 1 < transports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void Run() {
  const long codec_iters = EnvInt("DHS_WIRE_CODEC_ITERS", 200000);
  const uint64_t items =
      static_cast<uint64_t>(EnvInt("DHS_WIRE_ITEMS", 20000));
  // Read before any worker thread exists; nothing calls setenv.
  const char* json_env = std::getenv("DHS_WIRE_JSON");  // NOLINT(concurrency-mt-unsafe)
  const std::string json_path =
      json_env != nullptr && json_env[0] != '\0' ? json_env
                                                 : "BENCH_wire.json";

  PrintHeader("P5: wire codecs + transport round trip",
              "codec_iters=" + std::to_string(codec_iters) +
                  ", items=" + std::to_string(items));

  PrintRow({"frame", "bytes", "encode ns", "decode ns", "checksum"});
  const std::vector<WireResult> codecs = RunCodecs(codec_iters);
  for (const WireResult& r : codecs) {
    PrintRow({r.op, std::to_string(r.frame_bytes),
              FormatDouble(r.encode_ns, 1), FormatDouble(r.decode_ns, 1),
              std::to_string(r.checksum)});
  }

  std::printf("\n");
  PrintRow({"backend", "insert us/item", "count us", "messages",
            "socket bytes"});
  std::vector<TransportResult> transports;
  for (bool loopback : {false, true}) {
    transports.push_back(RunTransportWorkload(loopback, items));
    const TransportResult& r = transports.back();
    PrintRow({r.backend, FormatDouble(r.insert_us_per_item, 3),
              FormatDouble(r.count_us, 1), std::to_string(r.messages),
              std::to_string(r.socket_bytes)});
  }
  CHECK(transports[0].messages == transports[1].messages)
      << "loopback run diverged from sim";

  if (WriteJson(json_path, codecs, transports)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
