// A2 — Ablation: node failures, replication degree, and the bit-shift
// rule (§3.5).
//
// Sweeps the failure fraction p_f and the replication degree R,
// averaging over independent failure draws: in a 1024-node overlay the
// top bit positions all map to the arc of a *single* node (their
// intervals are sub-node sized), so a single failure realization is one
// coin flip — the paper's p_f^R analysis only shows up in expectation.
//
// The bit-shift variant exposes a trade-off the paper does not quantify:
// assigning bit i+b to interval i spreads each bit over 2^b more nodes
// (better fault tolerance, no replication traffic) but divides the
// per-interval item density by 2^b, so at a fixed retry limit the probe
// hit probability of §4.1 drops. The shifted variant therefore runs with
// lim scaled by 2^shift as eq. 6 prescribes.

#include <cstdio>

#include "common/check.h"
#include "bench_util.h"
#include "dht/fault.h"

namespace dhs {
namespace bench {
namespace {

struct Variant {
  const char* name;
  int replication;
  int shift_bits;
  int lim;
};

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int trials = EnvInt("DHS_TRIALS", 5);
  const int counts = EnvInt("DHS_COUNTS", 3);
  const int m = EnvInt("DHS_M", 512);
  PrintHeader("A2: failures x replication x bit-shift",
              "N=" + std::to_string(nodes) + ", k=24, m=" +
                  std::to_string(m) + ", DHS-sLL, relation Q, " +
                  std::to_string(trials) + " failure draws, scale=" +
                  FormatDouble(scale, 3));

  RelationSpec spec = PaperRelationSpecs(scale)[0];  // Q
  const Relation relation = RelationGenerator::Generate(spec, 10);
  const Variant variants[] = {
      {"R=1", 1, 0, 5},
      {"R=2", 2, 0, 5},
      {"R=3", 3, 0, 5},
      {"shift=3,lim=5", 1, 3, 5},
      {"shift=3,lim=40", 1, 3, 40},
  };

  PrintRow({"p_f", "R=1", "R=2", "R=3", "sh3/l5", "sh3/l40"}, 10);
  for (double failure_fraction : {0.0, 0.1, 0.2, 0.3}) {
    std::vector<std::string> row = {FormatDouble(failure_fraction, 1)};
    for (const Variant& variant : variants) {
      StreamingStats error;
      for (int trial = 0; trial < trials; ++trial) {
        auto net = MakeNetwork(nodes, 1);
        DhsConfig config;
        config.k = 24;
        config.m = m;
        config.replication = variant.replication;
        config.shift_bits = variant.shift_bits;
        config.lim = variant.lim;
        auto client_or = DhsClient::Create(net.get(), config);
        CHECK_OK(client_or);
        DhsClient client = std::move(client_or).value();
        Rng rng(9000 + trial * 131 +
                static_cast<uint64_t>(1000 * failure_fraction));
        (void)PopulateRelation(*net, client, relation, 1, rng);

        auto ids = net->NodeIds();
        for (uint64_t id : ids) {
          if (net->NumNodes() <= 16) break;
          // A node may already have failed this round; dropping the
          // NotFound is the point of the ablation.
          if (rng.Bernoulli(failure_fraction)) (void)net->FailNode(id);
        }
        for (int t = 0; t < counts; ++t) {
          auto result = client.Count(net->RandomNode(rng), 1, rng);
          if (result.ok()) {
            error.Add(RelativeError(
                result->estimate,
                static_cast<double>(relation.NumTuples())));
          }
        }
      }
      row.push_back(FormatDouble(100 * error.mean(), 1));
    }
    PrintRow(row, 10);
  }
  PrintPaperNote("replication degree R drives the p_f^R miss probability; "
                 "the shift rule matches that fault tolerance without "
                 "replica traffic but requires lim scaled by ~2^shift "
                 "(eq. 6) to keep the probe hit probability");
}

// A2b — message faults instead of node failures: every hop of the
// counting walk is subject to an i.i.d. drop probability, and the
// client rides it out with retry-with-backoff plus replica fallback.
// Reported per cell: relative error, mean retries per count, and the
// fraction of counts that gave up (left bitmaps unresolved after all
// retry attempts).
void RunMessageFaults() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int trials = EnvInt("DHS_TRIALS", 5);
  const int counts = EnvInt("DHS_COUNTS", 3);
  const int m = EnvInt("DHS_M", 512);
  PrintHeader("A2b: message drops x replication",
              "N=" + std::to_string(nodes) + ", k=24, m=" +
                  std::to_string(m) + ", DHS-sLL, relation Q, " +
                  std::to_string(trials) + " fault seeds, scale=" +
                  FormatDouble(scale, 3));

  RelationSpec spec = PaperRelationSpecs(scale)[0];  // Q
  const Relation relation = RelationGenerator::Generate(spec, 10);

  PrintRow({"drop", "R", "err%", "retries", "gaveup%"}, 10);
  for (double drop : {0.0, 0.01, 0.05}) {
    for (int replication : {1, 2, 3}) {
      StreamingStats error;
      StreamingStats retries;
      int gave_up = 0;
      int total = 0;
      for (int trial = 0; trial < trials; ++trial) {
        auto net = MakeNetwork(nodes, 1);
        DhsConfig config;
        config.k = 24;
        config.m = m;
        config.replication = replication;
        auto client_or = DhsClient::Create(net.get(), config);
        CHECK_OK(client_or);
        DhsClient client = std::move(client_or).value();
        Rng rng(7400 + trial * 131 +
                static_cast<uint64_t>(1000 * drop));
        // Populate over a reliable network; the ablation targets the
        // counting path.
        (void)PopulateRelation(*net, client, relation, 1, rng);
        if (drop > 0) {
          FaultConfig faults;
          faults.drop_probability = drop;
          faults.seed = 4242 + static_cast<uint64_t>(trial);
          CHECK_OK(net->SetFaultPlan(faults));
        }
        for (int t = 0; t < counts; ++t) {
          auto result = client.Count(net->RandomNode(rng), 1, rng);
          if (!result.ok()) continue;
          error.Add(RelativeError(result->estimate,
                                  static_cast<double>(relation.NumTuples())));
          retries.Add(static_cast<double>(result->cost.retries));
          gave_up += result->gave_up ? 1 : 0;
          ++total;
        }
      }
      PrintRow({FormatDouble(drop, 2), std::to_string(replication),
                FormatDouble(100 * error.mean(), 1),
                FormatDouble(retries.mean(), 1),
                FormatDouble(total > 0 ? 100.0 * gave_up / total : 0.0, 1)},
               10);
    }
  }
  PrintPaperNote("message loss is absorbed by retry-with-backoff before it "
                 "is visible in the estimate: at 5% drop every count "
                 "completes (gaveup=0) and the error matches the loss-free "
                 "row; faults surface as retries, not bias");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  dhs::bench::RunMessageFaults();
  return 0;
}
