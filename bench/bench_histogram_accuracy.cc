// E6 — Histogram accuracy (§5.2 text).
//
// Paper: average per-cell estimation error ~8.6% at m = 64, ~7.7% at
// m = 128, ~6.8% at m = 256 (100-bucket equi-width histograms).
//
// Per-cell error is averaged over the buckets of all four relations,
// weighting cells by their exact counts like the paper's "average
// estimation error per histogram cell" (tiny tail cells are reported
// separately since their relative error is dominated by the sketch
// small-range regime).

#include <cstdio>

#include "common/check.h"
#include "bench_util.h"
#include "histogram/equi_width.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  // Per-cell accuracy is governed by the per-node tuple density n/N (it
  // sets the probe hit probability of §4.1), so the default shrinks N
  // together with n: N = 128 at scale = 0.125 gives exactly the paper's
  // 10k..80k tuples/node. Hop costs are reported by E5, not here.
  const double scale = EnvDouble("DHS_SCALE", 0.125);
  const int nodes = EnvInt("DHS_NODES", 128);
  PrintHeader("E6: per-cell histogram accuracy vs m",
              "N=" + std::to_string(nodes) +
                  ", k=24, 100 buckets, 4 relations, scale=" +
                  FormatDouble(scale, 3) +
                  " (paper-matched per-node density)");
  PrintRow({"m", "err%/cell (weighted)", "err%/cell (heavy cells)"});

  const auto specs = PaperRelationSpecs(scale);
  const HistogramSpec hspec(1, 1000, 100);
  for (int m : {64, 128, 256}) {
    auto net = MakeNetwork(nodes, 1);
    DhsConfig config;
    config.k = 24;
    config.m = m;
    auto client_or = DhsClient::Create(net.get(), config);
    CHECK_OK(client_or);
    DhsClient client = std::move(client_or).value();

    Rng rng(500 + m);
    double weighted_error_sum = 0.0;
    double weight_sum = 0.0;
    StreamingStats heavy_cell_error;
    for (size_t i = 0; i < specs.size(); ++i) {
      const Relation relation =
          RelationGenerator::Generate(specs[i], 10 + i);
      DhsHistogram histogram(&client, hspec, 800 + i);
      (void)PopulateHistogram(*net, histogram, relation, rng);
      auto reconstruction = histogram.Reconstruct(net->RandomNode(rng), rng);
      if (!reconstruction.ok()) continue;
      const auto exact = BuildExactHistogram(relation, hspec);
      // "Heavy" cells hold at least m * 8 tuples — enough for the
      // asymptotic sketch regime.
      const double heavy_threshold = 8.0 * m;
      for (int b = 0; b < hspec.num_buckets(); ++b) {
        const double truth = static_cast<double>(exact[b]);
        if (truth == 0) continue;
        const double err =
            RelativeError(reconstruction->buckets[b], truth);
        weighted_error_sum += err * truth;
        weight_sum += truth;
        if (truth >= heavy_threshold) heavy_cell_error.Add(err);
      }
    }
    PrintRow({std::to_string(m),
              FormatDouble(100 * weighted_error_sum / weight_sum, 1),
              FormatDouble(100 * heavy_cell_error.mean(), 1)});
  }
  PrintPaperNote("~8.6% at m=64 -> ~7.7% at m=128 -> ~6.8% at m=256");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
