// A4 — Ablation: access & storage load balance (constraint 3, §1/§3.1).
//
// Inserts the same workload through DHS and through a one-node-per-
// counter baseline and prints per-node load distributions (stores and
// probe accesses). The thr() interval mapping is designed so that the
// expected per-node load is uniform; the central counter concentrates
// everything on a single node.
//
// DHS_TRIALS independent seeded trials (overlay, assignment and probe
// seeds all vary) run in parallel via RunTrials; the per-node samples of
// every trial are pooled in trial-index order, so the distributions are
// identical at every DHS_THREADS setting.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "baselines/central_counter.h"
#include "bench_util.h"
#include "hashing/hasher.h"

namespace dhs {
namespace bench {
namespace {

/// Per-trial sample pools (returned by value out of each trial; the
/// SampleStats inside are freshly built and handed over, never shared).
struct LoadSample {
  SampleStats dhs_stores;
  SampleStats dhs_probes;
  SampleStats dhs_storage;
  SampleStats central_stores;
};

void PrintDistribution(const char* label, SampleStats& stats) {
  PrintRow({label, FormatDouble(stats.mean(), 1),
            FormatDouble(stats.Median(), 1),
            FormatDouble(stats.Percentile(0.99), 1),
            FormatDouble(stats.max(), 1)},
           16);
}

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int trials = TrialCount();
  const int threads = TrialThreads();
  PrintHeader("A4: per-node load balance, DHS vs one-node-per-counter",
              "N=" + std::to_string(nodes) + ", k=24, m=512, relation Q, "
              "scale=" + FormatDouble(scale, 3) + ", trials=" +
              std::to_string(trials));

  RelationSpec spec = PaperRelationSpecs(scale)[0];
  // Shared read-only across trials (deeply const after generation).
  const Relation relation = RelationGenerator::Generate(spec, 10);

  const auto start = std::chrono::steady_clock::now();
  const auto samples = RunTrials(
      trials, /*seed_base=*/400, threads,
      [&](int /*trial*/, Rng& rng) -> LoadSample {
        LoadSample sample;

        // --- DHS.
        auto net = MakeNetwork(nodes, rng.Next());
        DhsConfig config;
        config.k = 24;
        config.m = 512;
        auto client_or = DhsClient::Create(net.get(), config);
        CHECK_OK(client_or);
        DhsClient client = std::move(client_or).value();
        net->ResetLoads();
        (void)PopulateRelation(*net, client, relation, 1, rng);
        for (int t = 0; t < 20; ++t) {
          // Probe-load traffic: failures are impossible on a fully live
          // overlay, and only the per-node load counters matter here.
          (void)client.Count(net->RandomNode(rng), 1, rng);
        }
        for (const auto& [id, load] : net->Loads()) {
          sample.dhs_stores.Add(static_cast<double>(load.stores));
          sample.dhs_probes.Add(static_cast<double>(load.probes));
        }
        for (uint64_t id : net->NodeIds()) {
          sample.dhs_storage.Add(
              static_cast<double>(net->StoreAt(id)->SizeBytes()));
        }

        // --- Central counter, same workload.
        auto central_net = MakeNetwork(nodes, rng.Next());
        CentralCounter counter(central_net.get(), 0xbeef,
                               CentralCounter::Mode::kExactSet);
        MixHasher hasher(0x1234567);
        central_net->ResetLoads();
        const auto assignment =
            AssignTuplesToNodes(relation, central_net->NodeIds(), rng);
        for (const auto& [node, tuples] : assignment) {
          for (uint64_t t : tuples) {
            // The central-counter baseline cannot fail on a live overlay.
            (void)counter.Add(node, hasher.HashU64(relation.TupleId(t)));
          }
        }
        for (const auto& [id, load] : central_net->Loads()) {
          sample.central_stores.Add(static_cast<double>(load.stores));
        }
        return sample;
      });

  LoadSample agg;
  for (const LoadSample& s : samples) {
    agg.dhs_stores.Merge(s.dhs_stores);
    agg.dhs_probes.Merge(s.dhs_probes);
    agg.dhs_storage.Merge(s.dhs_storage);
    agg.central_stores.Merge(s.central_stores);
  }

  PrintRow({"metric", "mean", "median", "p99", "max"}, 16);
  PrintDistribution("DHS stores", agg.dhs_stores);
  PrintDistribution("DHS probes", agg.dhs_probes);
  PrintDistribution("DHS bytes", agg.dhs_storage);
  PrintDistribution("central stores", agg.central_stores);
  std::printf("DHS max/median store ratio: %.1f;  central counter: one "
              "node per trial served ALL %llu stores\n",
              agg.dhs_stores.max() / std::max(1.0, agg.dhs_stores.Median()),
              static_cast<unsigned long long>(relation.NumTuples()));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PrintRunnerFooter(trials, threads, wall);
  PrintPaperNote("DHS imposes a totally balanced distribution of access "
                 "load (contribution (ii), §1)");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
