// A4 — Ablation: access & storage load balance (constraint 3, §1/§3.1).
//
// Inserts the same workload through DHS and through a one-node-per-
// counter baseline and prints per-node load distributions (stores and
// probe accesses). The thr() interval mapping is designed so that the
// expected per-node load is uniform; the central counter concentrates
// everything on a single node.

#include <algorithm>
#include <cstdio>

#include "baselines/central_counter.h"
#include "bench_util.h"
#include "hashing/hasher.h"

namespace dhs {
namespace bench {
namespace {

void PrintDistribution(const char* label, SampleStats& stats) {
  PrintRow({label, FormatDouble(stats.mean(), 1),
            FormatDouble(stats.Median(), 1),
            FormatDouble(stats.Percentile(0.99), 1),
            FormatDouble(stats.max(), 1)},
           16);
}

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  PrintHeader("A4: per-node load balance, DHS vs one-node-per-counter",
              "N=" + std::to_string(nodes) + ", k=24, m=512, relation Q, "
              "scale=" + FormatDouble(scale, 3));

  RelationSpec spec = PaperRelationSpecs(scale)[0];
  const Relation relation = RelationGenerator::Generate(spec, 10);

  // --- DHS.
  auto net = MakeNetwork(nodes, 1);
  DhsConfig config;
  config.k = 24;
  config.m = 512;
  DhsClient client = std::move(DhsClient::Create(net.get(), config).value());
  Rng rng(2);
  net->ResetLoads();
  (void)PopulateRelation(*net, client, relation, 1, rng);
  for (int t = 0; t < 20; ++t) {
    (void)client.Count(net->RandomNode(rng), 1, rng);
  }

  SampleStats dhs_stores;
  SampleStats dhs_probes;
  SampleStats dhs_storage;
  for (const auto& [id, load] : net->Loads()) {
    dhs_stores.Add(static_cast<double>(load.stores));
    dhs_probes.Add(static_cast<double>(load.probes));
  }
  for (uint64_t id : net->NodeIds()) {
    dhs_storage.Add(static_cast<double>(net->StoreAt(id)->SizeBytes()));
  }

  // --- Central counter, same workload.
  auto central_net = MakeNetwork(nodes, 1);
  CentralCounter counter(central_net.get(), 0xbeef,
                         CentralCounter::Mode::kExactSet);
  MixHasher hasher(0x1234567);
  Rng crng(3);
  central_net->ResetLoads();
  const auto assignment =
      AssignTuplesToNodes(relation, central_net->NodeIds(), crng);
  for (const auto& [node, tuples] : assignment) {
    for (uint64_t t : tuples) {
      (void)counter.Add(node, hasher.HashU64(relation.TupleId(t)));
    }
  }
  SampleStats central_stores;
  for (const auto& [id, load] : central_net->Loads()) {
    central_stores.Add(static_cast<double>(load.stores));
  }

  PrintRow({"metric", "mean", "median", "p99", "max"}, 16);
  PrintDistribution("DHS stores", dhs_stores);
  PrintDistribution("DHS probes", dhs_probes);
  PrintDistribution("DHS bytes", dhs_storage);
  PrintDistribution("central stores", central_stores);
  std::printf("DHS max/median store ratio: %.1f;  central counter: one "
              "node served ALL %llu stores\n",
              dhs_stores.max() / std::max(1.0, dhs_stores.Median()),
              static_cast<unsigned long long>(relation.NumTuples()));
  PrintPaperNote("DHS imposes a totally balanced distribution of access "
                 "load (contribution (ii), §1)");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
