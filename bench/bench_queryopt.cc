// E7 — "Histograms and Query Processing" (§5.2).
//
// The paper compares against the FREddies/PIER numbers of [17]: a
// three-way join over four relations of 256k tuples on 256 nodes, where
// the optimal join strategy transfers ~47 MB vs ~71 MB for FREddies'
// adaptive ordering — both orders of magnitude above the ~1 MB needed to
// reconstruct the DHS histograms that let an optimizer find the optimal
// plan in the first place.
//
// This binary builds DHS histograms over four 256k-tuple relations,
// derives a join order from the *reconstructed* (estimated) histograms,
// and evaluates all plans under the exact statistics.

#include <cstdio>

#include "common/check.h"
#include "bench_util.h"
#include "histogram/equi_width.h"
#include "queryopt/optimizer.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const double scale = EnvDouble("DHS_SCALE", 1.0);  // already small
  const int nodes = EnvInt("DHS_NODES", 256);
  const int m = EnvInt("DHS_M", 64);
  PrintHeader("E7: histogram-driven join ordering (PIER/FREddies setting)",
              "N=" + std::to_string(nodes) + ", 4 relations up to " +
                  std::to_string(static_cast<uint64_t>(256000 * scale)) +
                  " tuples, m=" + std::to_string(m) + ", 100 buckets");

  auto net = MakeNetwork(nodes, 1);
  DhsConfig config;
  config.k = 24;
  config.m = m;
  auto client_or = DhsClient::Create(net.get(), config);
  CHECK_OK(client_or);
  DhsClient client = std::move(client_or).value();

  // Key/foreign-key-like joins: the shared attribute domain is as large
  // as the biggest relation, so equi-joins select rather than multiply
  // (the regime in which [17]'s 47-71 MB transfers live). Relation sizes
  // differ 32x so join ordering genuinely matters.
  const uint64_t domain = static_cast<uint64_t>(256000 * scale);
  const HistogramSpec hspec(1, static_cast<int64_t>(domain), 100);
  const uint64_t sizes[4] = {
      static_cast<uint64_t>(8000 * scale),
      static_cast<uint64_t>(32000 * scale),
      static_cast<uint64_t>(128000 * scale),
      static_cast<uint64_t>(256000 * scale)};
  const char* names[4] = {"A", "B", "C", "D"};
  Rng rng(2);
  JoinQuery estimated;
  JoinQuery exact;
  uint64_t reconstruction_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    RelationSpec spec;
    spec.name = names[i];
    spec.num_tuples = sizes[i];
    spec.domain_size = domain;
    spec.zipf_theta = 0.0;  // uniform key-like attribute
    spec.tuple_bytes = 1024;
    const Relation relation = RelationGenerator::Generate(spec, 20 + i);

    DhsHistogram histogram(&client, hspec, 900 + i);
    (void)PopulateHistogram(*net, histogram, relation, rng);
    net->ResetStats();
    auto reconstruction = histogram.Reconstruct(net->RandomNode(rng), rng);
    reconstruction_bytes += net->stats().bytes;
    if (!reconstruction.ok()) return;

    estimated.inputs.push_back(JoinInput{
        names[i], AttributeStats{hspec, reconstruction->buckets}, 1024});
    const auto exact_buckets = BuildExactHistogram(relation, hspec);
    exact.inputs.push_back(
        JoinInput{names[i],
                  AttributeStats{hspec, std::vector<double>(
                                            exact_buckets.begin(),
                                            exact_buckets.end())},
                  1024});
  }

  JoinOptimizer est_optimizer(&estimated);
  JoinOptimizer true_optimizer(&exact);
  auto chosen = est_optimizer.Best();           // what DHS histograms pick
  auto best = true_optimizer.Best();            // true optimum
  auto worst = true_optimizer.Worst();          // pessimal order
  auto average = true_optimizer.AverageTransfer();  // "no optimizer"
  if (!chosen.ok() || !best.ok() || !worst.ok() || !average.ok()) return;
  auto chosen_true = true_optimizer.Evaluate(chosen->order);
  if (!chosen_true.ok()) return;

  auto mb = [](double bytes) { return FormatDouble(bytes / 1e6, 1); };
  PrintRow({"plan", "transfer(MB)", "order"}, 22);
  PrintRow({"DHS-histogram plan", mb(chosen_true->transfer_bytes),
            chosen->OrderString(estimated)}, 22);
  PrintRow({"true optimal", mb(best->transfer_bytes),
            best->OrderString(exact)}, 22);
  PrintRow({"average (no optimizer)", mb(*average), "-"}, 22);
  PrintRow({"pessimal", mb(worst->transfer_bytes),
            worst->OrderString(exact)}, 22);
  std::printf("histogram reconstruction cost: %.2f MB (all 4 relations)\n",
              static_cast<double>(reconstruction_bytes) / 1e6);
  PrintPaperNote("[17]: optimal 47 MB vs FREddies 71 MB; DHS histogram "
                 "reconstruction ~1 MB — negligible next to either");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
