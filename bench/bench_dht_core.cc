// P1 — simulator-core microbenchmark (not a paper experiment).
//
// Times the four DhtNetwork hot paths that bound every experiment
// binary: routed Lookup, CountNodesInRange, AdvanceClock with live
// soft-state records, and raw NodeStore Put/Get with DHS-packed keys.
// Runs each at 1k/10k/100k nodes and writes machine-readable results to
// BENCH_dht_core.json (override with DHS_CORE_JSON) so successive PRs
// can track the perf trajectory.
//
// Every operation also folds its outputs into a checksum that is
// printed alongside the timings: identical checksums across two builds
// are the cheap witness that an optimisation did not change routing or
// store behaviour (the full determinism check is diffing
// bench_counting/bench_insertion output, see EXPERIMENTS.md
// "Performance methodology").
//
// Knobs: DHS_CORE_MAX_NODES (default 102400) caps the overlay sweep,
// DHS_CORE_LOOKUPS / DHS_CORE_RANGES / DHS_CORE_TICKS /
// DHS_CORE_RECORDS / DHS_CORE_STORE_OPS size the per-op iteration
// counts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dhs/mapping.h"
#include "dht/store.h"

namespace dhs {
namespace bench {
namespace {

struct CoreResult {
  std::string op;
  int nodes = 0;
  long iters = 0;
  double ns_per_op = 0.0;
  uint64_t checksum = 0;
};

using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0)
      .count();
}

CoreResult BenchLookup(DhtNetwork& net, int nodes, long iters) {
  Rng rng(2024);
  // Draw origins from a NodeIds() snapshot: same values as RandomNode
  // (the ring is sorted) without charging its cost to the setup phase.
  const std::vector<uint64_t> ids = net.NodeIds();
  std::vector<uint64_t> froms(static_cast<size_t>(iters));
  std::vector<uint64_t> keys(static_cast<size_t>(iters));
  for (long i = 0; i < iters; ++i) {
    froms[static_cast<size_t>(i)] = ids[rng.UniformU64(ids.size())];
    keys[static_cast<size_t>(i)] = rng.Next();
  }
  // Untimed warmup with an independent rng stream: measures steady-state
  // routing (caches hot in either implementation) without perturbing the
  // draws behind the measured checksum. Routes depend only on membership,
  // so the checksum is warmup-invariant.
  Rng warm_rng(771);
  const long warmup = std::max<long>(iters * 2, 1000);
  for (long i = 0; i < warmup; ++i) {
    // Warm-up traffic; only the cache-priming side effect matters.
    (void)net.Lookup(ids[warm_rng.UniformU64(ids.size())],
                     warm_rng.Next(), 16);
  }
  uint64_t checksum = 0;
  const auto t0 = Clock::now();
  for (long i = 0; i < iters; ++i) {
    auto result = net.Lookup(froms[static_cast<size_t>(i)],
                             keys[static_cast<size_t>(i)], 16);
    if (result.ok()) {
      checksum += static_cast<uint64_t>(result->hops);
      checksum ^= result->node;
    }
  }
  const double ns = ElapsedNs(t0);
  return {"lookup", nodes, iters, ns / static_cast<double>(iters),
          checksum};
}

CoreResult BenchRangeCount(const DhtNetwork& net, int nodes, long iters) {
  Rng rng(77);
  std::vector<uint64_t> los(static_cast<size_t>(iters));
  std::vector<uint64_t> his(static_cast<size_t>(iters));
  for (long i = 0; i < iters; ++i) {
    los[static_cast<size_t>(i)] = rng.Next();
    his[static_cast<size_t>(i)] = rng.Next();
  }
  uint64_t checksum = 0;
  const auto t0 = Clock::now();
  for (long i = 0; i < iters; ++i) {
    checksum += net.CountNodesInRange(los[static_cast<size_t>(i)],
                                      his[static_cast<size_t>(i)]);
  }
  const double ns = ElapsedNs(t0);
  return {"range_count", nodes, iters, ns / static_cast<double>(iters),
          checksum};
}

CoreResult BenchAdvanceClock(DhtNetwork& net, int nodes, long records,
                             long ticks) {
  // Spread `records` soft-state tuples over random nodes, all expiring
  // far beyond the measured window: this times the bookkeeping cost of
  // a maintenance tick, not record deletion itself.
  Rng rng(4242);
  const std::vector<uint64_t> ids = net.NodeIds();
  for (long i = 0; i < records; ++i) {
    NodeStore* store = net.StoreAt(ids[rng.UniformU64(ids.size())]);
    const int bit = static_cast<int>(i % 16);
    const int vector_id = static_cast<int>((i / 16) % 1024);
    const uint64_t metric = 1 + static_cast<uint64_t>(i / (16 * 1024));
    store->Put(rng.Next(), MakeDhsKey(metric, bit, vector_id),
               std::string(),
               net.now() + 1000000000ull + static_cast<uint64_t>(i));
  }
  const auto t0 = Clock::now();
  for (long t = 0; t < ticks; ++t) net.AdvanceClock(1);
  const double ns = ElapsedNs(t0);
  const uint64_t checksum = net.now() + net.TotalStorageBytes();
  return {"advance_clock", nodes, ticks, ns / static_cast<double>(ticks),
          checksum};
}

void BenchStorePutGet(int nodes, long ops, std::vector<CoreResult>* out) {
  NodeStore store;
  Rng rng(99);
  std::vector<uint64_t> dht_keys(static_cast<size_t>(ops));
  for (long i = 0; i < ops; ++i) {
    dht_keys[static_cast<size_t>(i)] = rng.Next();
  }
  auto key_of = [](long i) {
    const int bit = static_cast<int>(i % 16);
    const int vector_id = static_cast<int>((i / 16) % 1024);
    const uint64_t metric = 1 + static_cast<uint64_t>(i / (16 * 1024));
    return MakeDhsKey(metric, bit, vector_id);
  };
  const auto t0 = Clock::now();
  for (long i = 0; i < ops; ++i) {
    store.Put(dht_keys[static_cast<size_t>(i)], key_of(i), std::string(),
              kNoExpiry);
  }
  const double put_ns = ElapsedNs(t0);
  out->push_back({"store_put", nodes, ops,
                  put_ns / static_cast<double>(ops), store.NumRecords()});

  uint64_t checksum = 0;
  const auto t1 = Clock::now();
  for (long i = 0; i < ops; ++i) {
    const StoreRecord* rec = store.Get(key_of(i), 0);
    if (rec != nullptr) checksum ^= rec->dht_key;
  }
  const double get_ns = ElapsedNs(t1);
  out->push_back({"store_get", nodes, ops,
                  get_ns / static_cast<double>(ops), checksum});
}

bool WriteJson(const std::string& path,
               const std::vector<CoreResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"dht_core\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CoreResult& r = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"nodes\": %d, \"iters\": %ld, "
                 "\"ns_per_op\": %.1f, \"checksum\": %llu}%s\n",
                 r.op.c_str(), r.nodes, r.iters, r.ns_per_op,
                 static_cast<unsigned long long>(r.checksum),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void Run() {
  const int max_nodes = EnvInt("DHS_CORE_MAX_NODES", 102400);
  const long lookups = EnvInt("DHS_CORE_LOOKUPS", 2000);
  const long ranges = EnvInt("DHS_CORE_RANGES", 5000);
  const long ticks = EnvInt("DHS_CORE_TICKS", 200);
  const long records = EnvInt("DHS_CORE_RECORDS", 100000);
  const long store_ops = EnvInt("DHS_CORE_STORE_OPS", 200000);
  // Read before any worker thread exists; nothing calls setenv.
  const char* json_env = std::getenv("DHS_CORE_JSON");  // NOLINT(concurrency-mt-unsafe)
  const std::string json_path =
      json_env != nullptr && json_env[0] != '\0' ? json_env
                                                 : "BENCH_dht_core.json";

  PrintHeader("P1: simulator-core hot paths",
              "max_nodes=" + std::to_string(max_nodes) +
                  ", records=" + std::to_string(records));
  PrintRow({"op", "nodes", "iters", "ns/op", "checksum"});

  std::vector<CoreResult> results;
  for (int nodes : {1024, 10240, 102400}) {
    if (nodes > max_nodes) break;
    auto net = MakeNetwork(nodes, 1);
    results.push_back(BenchLookup(*net, nodes, lookups));
    results.push_back(BenchRangeCount(*net, nodes, ranges));
    results.push_back(BenchAdvanceClock(*net, nodes, records, ticks));
    BenchStorePutGet(nodes, store_ops, &results);
    for (size_t i = results.size() - 5; i < results.size(); ++i) {
      const CoreResult& r = results[i];
      PrintRow({r.op, std::to_string(r.nodes), std::to_string(r.iters),
                FormatDouble(r.ns_per_op, 1), std::to_string(r.checksum)});
    }
  }
  if (WriteJson(json_path, results)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
