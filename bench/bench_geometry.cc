// A5 — Ablation: overlay geometry (the paper's DHT-agnostic claim, §1).
//
// Runs the identical DHS workload over the Chord (ring) and Kademlia
// (XOR) simulators and reports insertion/counting cost and accuracy.
// The thr() bit->interval mapping is prefix-aligned, so it is meaningful
// under both geometries; the numbers should match in shape with only
// routing-constant differences.

#include <cstdio>
#include <memory>

#include "common/check.h"
#include "bench_util.h"
#include "dht/kademlia.h"

namespace dhs {
namespace bench {
namespace {

void RunGeometry(DhtNetwork* net, const char* label, double scale,
                 int counts) {
  DhsConfig config;
  config.k = 24;
  config.m = 512;
  auto sll_or = DhsClient::Create(net, config);
  CHECK_OK(sll_or);
  DhsClient sll = std::move(sll_or).value();
  config.estimator = DhsEstimator::kPcsa;
  auto pcsa_or = DhsClient::Create(net, config);
  CHECK_OK(pcsa_or);
  DhsClient pcsa = std::move(pcsa_or).value();

  RelationSpec spec = PaperRelationSpecs(scale)[2];  // S
  const Relation relation = RelationGenerator::Generate(spec, 12);
  Rng rng(31);
  net->ResetStats();
  (void)PopulateRelation(*net, sll, relation, 1, rng);
  const MessageStats insert_stats = net->stats();
  const double insert_hops_per_msg =
      static_cast<double>(insert_stats.hops) /
      static_cast<double>(insert_stats.messages);

  CountingCostSummary sll_summary;
  CountingCostSummary pcsa_summary;
  for (int t = 0; t < counts; ++t) {
    auto a = sll.Count(net->RandomNode(rng), 1, rng);
    auto b = pcsa.Count(net->RandomNode(rng), 1, rng);
    if (a.ok()) {
      sll_summary.Add(a->cost, a->estimate,
                      static_cast<double>(relation.NumTuples()));
    }
    if (b.ok()) {
      pcsa_summary.Add(b->cost, b->estimate,
                       static_cast<double>(relation.NumTuples()));
    }
  }
  auto cell = [](double s, double p, int digits) {
    return FormatDouble(s, digits) + " / " + FormatDouble(p, digits);
  };
  PrintRow({label, FormatDouble(insert_hops_per_msg, 2),
            cell(sll_summary.hops.mean(), pcsa_summary.hops.mean(), 0),
            cell(sll_summary.nodes_visited.mean(),
                 pcsa_summary.nodes_visited.mean(), 0),
            cell(100 * sll_summary.error.mean(),
                 100 * pcsa_summary.error.mean(), 1)},
           16);
}

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int counts = EnvInt("DHS_COUNTS", 8);
  PrintHeader("A5: DHS over Chord vs Kademlia (DHT-agnostic claim)",
              "N=" + std::to_string(nodes) + ", k=24, m=512, relation S, "
              "scale=" + FormatDouble(scale, 3));
  PrintRow({"geometry", "ins hops/msg", "count hops", "visited",
            "error(%)"},
           16);

  {
    OverlayConfig config;
    config.hasher = "mix";
    ChordNetwork chord(config);
    Rng rng(1);
    while (chord.NumNodes() < static_cast<size_t>(nodes)) {
      (void)chord.AddNode(rng.Next());  // duplicate ID: retry
    }
    RunGeometry(&chord, "chord", scale, counts);
  }
  {
    OverlayConfig config;
    config.hasher = "mix";
    KademliaNetwork kademlia(config);
    Rng rng(1);
    while (kademlia.NumNodes() < static_cast<size_t>(nodes)) {
      (void)kademlia.AddNode(rng.Next());  // duplicate ID: retry
    }
    RunGeometry(&kademlia, "kademlia", scale, counts);
  }
  PrintPaperNote("the paper's design \"can be deployed over any overlay "
                 "conforming to the DHT abstraction\" — identical "
                 "protocol, same accuracy, geometry-specific routing "
                 "constants only");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
