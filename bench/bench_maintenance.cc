// A7 — Ablation: the soft-state timeout trade-off (§3.3).
//
// "Larger time-out values will result in less updates per time unit...
// a smaller value will allow for faster adaptation to abrupt
// fluctuations... but will incur a higher maintenance cost."
//
// Simulation: a metric whose true membership churns (10% of items are
// replaced each tick). Nodes refresh their registrations every
// refresh_period ticks; tuples live ttl = 2 * refresh_period. Reported
// per TTL setting: maintenance bandwidth per tick, and the estimation
// error against the CURRENT item set (staleness shows up as
// overestimation: departed items that have not yet aged out).

#include <cstdio>
#include <unordered_map>

#include "common/check.h"
#include "bench_util.h"
#include "dhs/maintainer.h"
#include "hashing/hasher.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const int nodes = EnvInt("DHS_NODES", 256);
  const uint64_t items = static_cast<uint64_t>(
      EnvDouble("DHS_SCALE", 0.1) / 0.1 * 200000);
  PrintHeader("A7: soft-state timeout trade-off",
              "N=" + std::to_string(nodes) + ", m=128, " +
                  std::to_string(items) +
                  " live items, 10% churn per tick, ttl = 2 x refresh");
  PrintRow({"refresh period", "kB/tick maint.", "err% (avg)",
            "err% (right after churn)"},
           20);

  for (int refresh_period : {1, 2, 4, 8}) {
    auto net = MakeNetwork(nodes, 1);
    DhsConfig config;
    config.k = 24;
    config.m = 128;
    config.ttl_ticks = static_cast<uint64_t>(2 * refresh_period);
    auto client_or = DhsClient::Create(net.get(), config);
    CHECK_OK(client_or);
    DhsClient client = std::move(client_or).value();
    DhsMaintainer maintainer(&client);

    Rng rng(100 + refresh_period);
    MixHasher hasher(9);
    const auto node_ids = net->NodeIds();
    // Live set: item hash -> hosting node.
    std::unordered_map<uint64_t, uint64_t> live;
    uint64_t next_item = 0;
    auto add_item = [&] {
      const uint64_t hash = hasher.HashU64(next_item++);
      const uint64_t node = node_ids[rng.UniformU64(node_ids.size())];
      live.emplace(hash, node);
      maintainer.RegisterItem(node, 1, hash);
    };
    for (uint64_t i = 0; i < items; ++i) add_item();
    // Refresh cost is read from the stats delta, not the return value.
    (void)maintainer.RefreshRound(rng);

    constexpr int kTicks = 16;
    uint64_t maintenance_bytes = 0;
    StreamingStats error_all;
    StreamingStats error_fresh;
    for (int tick = 1; tick <= kTicks; ++tick) {
      // Churn: 10% of items replaced. Hosts stop refreshing departed
      // items immediately; the DHS only forgets them at TTL expiry (the
      // staleness under study).
      const size_t replace = live.size() / 10;
      size_t removed = 0;
      for (auto it = live.begin(); it != live.end() && removed < replace;) {
        maintainer.UnregisterItem(it->second, 1, it->first);
        it = live.erase(it);
        ++removed;
      }
      for (size_t i = 0; i < replace; ++i) add_item();

      net->ResetStats();
      if (tick % refresh_period == 0) {
        // As above: cost accounting is the observable.
        (void)maintainer.RefreshRound(rng);
      }
      maintenance_bytes += net->stats().bytes;
      net->AdvanceClock(1);

      auto estimate = client.Count(net->RandomNode(rng), 1, rng);
      if (estimate.ok()) {
        const double err = RelativeError(
            estimate->estimate, static_cast<double>(live.size()));
        error_all.Add(err);
        if (tick % refresh_period == 1 || refresh_period == 1) {
          error_fresh.Add(err);
        }
      }
    }
    PrintRow({std::to_string(refresh_period),
              FormatDouble(static_cast<double>(maintenance_bytes) /
                               kTicks / 1024.0,
                           1),
              FormatDouble(100 * error_all.mean(), 1),
              FormatDouble(100 * error_fresh.mean(), 1)},
             20);
  }
  PrintPaperNote("short timeouts track fluctuation tightly but refresh "
                 "often; long timeouts amortize maintenance and tolerate "
                 "staleness (§3.3's trade-off, quantified)");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
