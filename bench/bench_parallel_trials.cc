// P2 — parallel trial-runner throughput (not a paper experiment).
//
// Measures RunTrials (common/thread_pool.h) throughput in trials/sec as
// the worker count sweeps {1, 2, 4, 8}, at N = 1024 and N = 10240
// nodes, with a fixed per-trial workload: build the overlay, bulk-insert
// a seeded item stream through a DhsClient, run a few distributed
// counts. Results go to BENCH_parallel_trials.json (override with
// DHS_PARALLEL_JSON) so successive PRs can track scaling.
//
// Before any timing is reported, the bench re-verifies the runner's
// determinism contract on the real workload: the per-trial estimate and
// hop vectors at every thread count must be bit-identical to the
// single-threaded run, or the bench aborts. Speedup numbers for a
// runner that changed the answers would be meaningless.
//
// Knobs: DHS_PAR_TRIALS (trials per timing point, default 8),
// DHS_PAR_ITEMS (items per trial, default 4000), DHS_PAR_COUNTS
// (counts per trial, default 4). The recorded numbers depend on the
// host's core count; the JSON embeds it.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "bench_util.h"

namespace dhs {
namespace bench {
namespace {

/// Per-trial outcome: value-only, so the handoff out of the trial is
/// safe (see kThreadHostile in common/sync.h).
struct TrialOutcome {
  double estimate = 0.0;
  int hops = 0;
};

struct ThroughputPoint {
  int nodes = 0;
  int threads = 0;
  int trials = 0;
  double wall_seconds = 0.0;
  double trials_per_second = 0.0;
  double speedup = 0.0;  // vs the 1-thread point at the same N
};

using Clock = std::chrono::steady_clock;

void Run() {
  const int trials = EnvInt("DHS_PAR_TRIALS", 8);
  const int items = EnvInt("DHS_PAR_ITEMS", 4000);
  const int counts = EnvInt("DHS_PAR_COUNTS", 4);
  const unsigned host_cores = std::thread::hardware_concurrency();

  PrintHeader("P2: RunTrials throughput vs worker count",
              "trials/point=" + std::to_string(trials) + ", items/trial=" +
                  std::to_string(items) + ", host cores=" +
                  std::to_string(host_cores));
  PrintRow({"N", "threads", "trials/s", "wall s", "speedup"});

  // One full simulator trial; everything thread-hostile is confined.
  auto make_trial = [items, counts](int nodes) {
    return [nodes, items, counts](int /*trial*/, Rng& rng) -> TrialOutcome {
      auto net = MakeNetwork(nodes, rng.Next());
      DhsConfig config;
      config.k = 24;
      config.m = 512;
      auto client_or = DhsClient::Create(net.get(), config);
      CHECK_OK(client_or);
      DhsClient client = std::move(client_or).value();
      std::vector<uint64_t> batch(static_cast<size_t>(items));
      for (auto& item : batch) item = rng.Next();
      // A live overlay cannot fail an insert; cost is not measured here.
      (void)client.InsertBatch(net->RandomNode(rng), 1, batch, rng);
      TrialOutcome outcome;
      for (int c = 0; c < counts; ++c) {
        auto result = client.Count(net->RandomNode(rng), 1, rng);
        CHECK_OK(result);
        outcome.estimate += result->estimate;
        outcome.hops += result->cost.hops;
      }
      return outcome;
    };
  };

  std::vector<ThroughputPoint> points;
  for (int nodes : {1024, 10240}) {
    const auto trial_fn = make_trial(nodes);
    std::vector<TrialOutcome> reference;
    double serial_wall = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      const auto t0 = Clock::now();
      const auto outcomes =
          RunTrials(trials, /*seed_base=*/500, threads, trial_fn);
      const double wall =
          std::chrono::duration<double>(Clock::now() - t0).count();

      // Determinism gate: every thread count must reproduce the
      // 1-thread per-trial results bit for bit.
      if (threads == 1) {
        reference = outcomes;
        serial_wall = wall;
      } else {
        CHECK_EQ(outcomes.size(), reference.size());
        for (size_t t = 0; t < outcomes.size(); ++t) {
          CHECK_EQ(outcomes[t].estimate, reference[t].estimate)
              << "trial " << t << " diverged at " << threads << " threads";
          CHECK_EQ(outcomes[t].hops, reference[t].hops)
              << "trial " << t << " diverged at " << threads << " threads";
        }
      }

      ThroughputPoint point;
      point.nodes = nodes;
      point.threads = threads;
      point.trials = trials;
      point.wall_seconds = wall;
      point.trials_per_second = static_cast<double>(trials) / wall;
      point.speedup = serial_wall / wall;
      points.push_back(point);
      PrintRow({std::to_string(nodes), std::to_string(threads),
                FormatDouble(point.trials_per_second, 2),
                FormatDouble(wall, 2), FormatDouble(point.speedup, 2)});
    }
  }

  // Read before any worker thread of the *next* sweep exists; nothing
  // calls setenv.
  const char* json_env = std::getenv("DHS_PARALLEL_JSON");  // NOLINT(concurrency-mt-unsafe)
  const std::string json_path = json_env != nullptr && json_env[0] != '\0'
                                    ? json_env
                                    : "BENCH_parallel_trials.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"parallel_trials\",\n"
               "  \"host_cores\": %u,\n"
               "  \"trials_per_point\": %d,\n"
               "  \"determinism\": \"per-trial results bit-identical at "
               "1/2/4/8 threads\",\n"
               "  \"results\": [\n",
               host_cores, trials);
  for (size_t i = 0; i < points.size(); ++i) {
    const ThroughputPoint& p = points[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"threads\": %d, "
                 "\"trials_per_second\": %.3f, \"wall_seconds\": %.3f, "
                 "\"speedup_vs_1_thread\": %.2f}%s\n",
                 p.nodes, p.threads, p.trials_per_second, p.wall_seconds,
                 p.speedup, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  PrintPaperNote("speedup tracks min(threads, host cores, trials); on a "
                 "1-core host every point stays ~1.0 by construction");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
