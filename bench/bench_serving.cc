// P6 — serving-layer throughput (not a paper experiment).
//
// Prices the DhsServing front end (dhs/serving.h) on the workload it
// was built for: a multi-tenant count mix whose metric popularity is
// Zipf-skewed, so a handful of hot metrics receive most requests.
//
//   * Counts leg — `reqs` single-metric count requests, metric drawn
//     from Zipf(theta) over `tenants` metrics, submitted in flush
//     batches of `batch`. Modes: uncoalesced (every request its own
//     probe wave), coalesced (identical sets share one wave), and
//     coalesced+tuned (online lim tuner active). Run over the sim
//     backend and again with every frame crossing the AF_UNIX
//     loopback pair. The frontier cache is OFF in all modes so the
//     numbers isolate coalescing, not memoization.
//   * Inserts leg — insert batches through the sharded front door at
//     1/4/8 shards, sequential vs pipelined (all pending batches
//     compiled into one engine wave).
//
// Equivalence gates before any number is trusted: every count leg
// replays its own wave log through a plain DhsClient on an
// identically-built twin world with an identically-seeded RNG and
// requires every served answer byte-identical to the replay (the
// serving layer's headline guarantee — coalesced and uncoalesced legs
// consume different rng streams, so they are each gated against their
// own unoptimized replay, not against each other), and every insert
// leg must leave byte-identical worlds (per-ticket cost reports,
// message stats, storage) across modes AND shard counts.
// The headline acceptance ratio — coalesced >= 2x uncoalesced
// counts/sec on the default workload — is CHECKed, not just printed.
//
// Results land in BENCH_serving.json (override: DHS_SERVING_JSON).
// Knobs: DHS_SERVING_NODES (256), DHS_SERVING_TENANTS (16),
// DHS_SERVING_ITEMS (items per tenant, 1500), DHS_SERVING_REQS (1536),
// DHS_SERVING_BATCH (32), DHS_SERVING_THETA (x100, 100),
// DHS_SERVING_INSERT_BATCHES (160).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/zipf.h"
#include "dhs/front_door.h"
#include "dhs/serving.h"
#include "dht/chord.h"
#include "dht/loopback.h"
#include "dht/shard.h"
#include "hashing/hasher.h"

namespace dhs {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedSeconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Full-precision, locale-independent double formatting (digests and
/// JSON fields share it so reruns diff cleanly).
std::string StableDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

DhsConfig ServingBenchConfig() {
  DhsConfig config;
  config.k = 24;
  config.m = 16;
  config.replication = 2;
  config.frontier_cache = false;  // isolate coalescing from memoization
  return config;
}

struct Workload {
  int nodes;
  int tenants;
  int items_per_tenant;
  int reqs;
  int batch;
  double theta;
  int insert_batches;
};

Workload ReadWorkload() {
  Workload w;
  w.nodes = EnvInt("DHS_SERVING_NODES", 256);
  w.tenants = EnvInt("DHS_SERVING_TENANTS", 16);
  w.items_per_tenant = EnvInt("DHS_SERVING_ITEMS", 1500);
  w.reqs = EnvInt("DHS_SERVING_REQS", 1536);
  w.batch = EnvInt("DHS_SERVING_BATCH", 32);
  w.theta = EnvInt("DHS_SERVING_THETA", 100) / 100.0;
  w.insert_batches = EnvInt("DHS_SERVING_INSERT_BATCHES", 160);
  return w;
}

// ---------------------------------------------------------------------------
// Counts leg: Zipf-skewed hot-metric mix, uncoalesced vs coalesced vs
// coalesced+tuned, over the sim and loopback transports.

struct CountLeg {
  std::string transport;
  std::string mode;
  int requests = 0;
  uint64_t waves = 0;
  uint64_t coalesced = 0;
  uint64_t messages = 0;
  double wall = 0.0;
  double per_sec = 0.0;
  double speedup = 1.0;               // vs the uncoalesced leg
  int lim_final = 0;                  // tuned mode only
};

/// Identical tenant populations in every world: tenant t gets
/// `items_per_tenant` items from one deterministic MixHasher stream,
/// inserted in 250-item groups.
void PopulateTenants(const Workload& w, DhtNetwork* net, DhsClient* client) {
  Rng populate_rng(41);
  MixHasher hasher(42);
  uint64_t next_item = 0;
  for (int t = 1; t <= w.tenants; ++t) {
    std::vector<uint64_t> group;
    for (int i = 0; i < w.items_per_tenant; ++i) {
      group.push_back(hasher.HashU64(next_item++));
      if (group.size() == 250) {
        CHECK_OK(client->InsertBatch(net->RandomNode(populate_rng),
                                     static_cast<uint64_t>(t), group,
                                     populate_rng));
        group.clear();
      }
    }
    if (!group.empty()) {
      CHECK_OK(client->InsertBatch(net->RandomNode(populate_rng),
                                   static_cast<uint64_t>(t), group,
                                   populate_rng));
    }
  }
}

CountLeg RunCountLeg(const Workload& w, bool loopback, bool coalesce,
                     bool tune) {
  const auto make_client = [&](DhtNetwork* net) {
    auto created =
        loopback
            ? DhsClient::Create(net, ServingBenchConfig(),
                                std::make_shared<LoopbackTransport>(net))
            : DhsClient::Create(net, ServingBenchConfig());
    CHECK_OK(created);
    return std::make_unique<DhsClient>(std::move(created.value()));
  };

  // The serving world and its replay twin are built identically; the
  // twin stays untouched until replay so every wave finds the same
  // stored state the serving wave saw.
  auto net = MakeNetwork(w.nodes, /*seed=*/20260808);
  auto client = make_client(net.get());
  PopulateTenants(w, net.get(), client.get());
  auto twin_net = MakeNetwork(w.nodes, /*seed=*/20260808);
  auto twin = make_client(twin_net.get());
  PopulateTenants(w, twin_net.get(), twin.get());

  DhsServingConfig serving_config;
  serving_config.coalesce_counts = coalesce;
  serving_config.tune_lim = tune;
  auto serving_or = DhsServing::Create(client.get(), serving_config);
  CHECK_OK(serving_or);
  DhsServing serving = std::move(serving_or.value());

  // The request stream is a pure function of its seeds, so every mode
  // serves the exact same sequence of (origin, metric) requests.
  ZipfGenerator zipf(static_cast<uint64_t>(w.tenants), w.theta);
  Rng request_rng(43);
  Rng serve_rng(44);
  Rng replay_rng(44);  // twin of serve_rng, consumed wave for wave

  CountLeg leg;
  leg.transport = loopback ? "loopback" : "sim";
  leg.mode = tune ? "coalesced+tuned" : (coalesce ? "coalesced" : "uncoalesced");
  leg.requests = w.reqs;

  const uint64_t messages_before = net->stats().messages;
  std::vector<uint64_t> tickets;
  std::vector<std::vector<uint64_t>> sets;  // parallel: submitted metric set
  for (int r = 0; r < w.reqs; ++r) {
    std::vector<uint64_t> set = {zipf.Sample(request_rng)};
    const uint64_t origin = net->RandomNode(request_rng);
    sets.push_back(set);
    const auto t0 = Clock::now();
    tickets.push_back(serving.SubmitCount(origin, std::move(set)));
    leg.wall += ElapsedSeconds(t0);
    if (static_cast<int>(tickets.size()) == w.batch || r + 1 == w.reqs) {
      const auto t1 = Clock::now();
      CHECK_OK(serving.Flush(serve_rng));
      std::vector<DhsClient::MultiCountResult> results;
      for (uint64_t ticket : tickets) {
        auto result = serving.TakeCount(ticket);
        CHECK_OK(result);
        results.push_back(std::move(result.value()));
      }
      leg.wall += ElapsedSeconds(t1);

      // Untimed equivalence gate: replay this flush's wave log through
      // the plain twin and require every served answer byte-identical.
      // Group reconstruction mirrors FlushCounts: identical metric sets
      // coalesce into the first-seen ticket's wave; with coalescing off
      // every ticket is its own wave in submission order.
      std::vector<std::vector<size_t>> wave_groups;
      if (coalesce) {
        std::map<std::vector<uint64_t>, size_t> group_of;
        for (size_t i = 0; i < tickets.size(); ++i) {
          auto inserted = group_of.emplace(sets[i], wave_groups.size());
          if (inserted.second) wave_groups.emplace_back();
          wave_groups[inserted.first->second].push_back(i);
        }
      } else {
        for (size_t i = 0; i < tickets.size(); ++i) {
          wave_groups.push_back({i});
        }
      }
      const std::vector<ServingWave>& log = serving.wave_log();
      CHECK(log.size() == wave_groups.size())
          << leg.transport << '/' << leg.mode << ": wave log has "
          << log.size() << " waves for " << wave_groups.size() << " groups";
      for (size_t wave_index = 0; wave_index < log.size(); ++wave_index) {
        const ServingWave& wave = log[wave_index];
        CHECK(wave.kind == ServingWave::kCountWave);
        CHECK(wave.waiters == wave_groups[wave_index].size());
        DhsCountOptions options;
        options.lim_override = wave.lim_override;
        auto replay = twin->CountMany(wave.origin, wave.metric_ids,
                                      replay_rng, options);
        CHECK_OK(replay);
        for (size_t i : wave_groups[wave_index]) {
          const DhsClient::MultiCountResult& served = results[i];
          CHECK(served.estimates == replay->estimates &&
                served.observables == replay->observables &&
                served.gave_up == replay->gave_up &&
                served.bitmaps_unresolved == replay->bitmaps_unresolved &&
                served.cost.bytes == replay->cost.bytes &&
                served.cost.nodes_visited == replay->cost.nodes_visited)
              << leg.transport << '/' << leg.mode
              << ": served answer diverged from the plain replay";
        }
      }
      tickets.clear();
      sets.clear();
      serving.ClearWaveLog();
    }
  }
  leg.waves = serving.stats().count_waves;
  leg.coalesced = serving.stats().coalesced;
  leg.messages = net->stats().messages - messages_before;
  leg.per_sec = static_cast<double>(w.reqs) / leg.wall;
  leg.lim_final = serving.lim_override();
  CHECK_OK(net->AuditFull());
  CHECK_OK(twin_net->AuditFull());
  return leg;
}

// ---------------------------------------------------------------------------
// Inserts leg: sharded front door, sequential vs pipelined.

struct InsertLeg {
  int shards = 0;
  std::string mode;
  int batches = 0;
  uint64_t items = 0;
  uint64_t waves = 0;
  double wall = 0.0;
  double items_per_sec = 0.0;
  double speedup = 1.0;   // vs sequential at the same shard count
  std::string digest;     // world observables, compared across everything
};

InsertLeg RunInsertLeg(const Workload& w, int shards, bool pipeline) {
  auto net = MakeNetwork(w.nodes, /*seed=*/20260808);
  ShardedNetwork engine(net.get(), shards);
  auto door_or = DhsFrontDoor::Create(&engine, ServingBenchConfig());
  CHECK_OK(door_or);
  DhsFrontDoor door = std::move(door_or.value());

  DhsServingConfig serving_config;
  serving_config.pipeline_inserts = pipeline;
  auto serving_or = DhsServing::Create(&door, serving_config);
  CHECK_OK(serving_or);
  DhsServing serving = std::move(serving_or.value());

  MixHasher hasher(71);
  Rng schedule(72);
  Rng serve_rng(73);
  uint64_t next_item = 0;

  InsertLeg leg;
  leg.shards = shards;
  leg.mode = pipeline ? "pipelined" : "sequential";
  leg.batches = w.insert_batches;

  std::ostringstream digest;
  std::vector<uint64_t> tickets;
  const auto t0 = Clock::now();
  for (int b = 0; b < w.insert_batches; ++b) {
    const uint64_t metric = 1 + static_cast<uint64_t>(b % w.tenants);
    std::vector<uint64_t> items;
    for (int i = 0; i < 120; ++i) items.push_back(hasher.HashU64(next_item++));
    leg.items += items.size();
    tickets.push_back(serving.SubmitInsertBatch(net->RandomNode(schedule),
                                                metric, std::move(items)));
    if (tickets.size() == 8 || b + 1 == w.insert_batches) {
      CHECK_OK(serving.Flush(serve_rng));
      for (uint64_t ticket : tickets) {
        auto cost = serving.TakeInsert(ticket);
        CHECK_OK(cost);
        digest << "cost " << cost->nodes_visited << ' ' << cost->hops << ' '
               << cost->bytes << ' ' << cost->dht_lookups << ' '
               << cost->direct_probes << ' ' << cost->replicas_written << '\n';
      }
      tickets.clear();
      serving.ClearWaveLog();
    }
  }
  leg.wall = ElapsedSeconds(t0);
  leg.waves = serving.stats().insert_waves;
  leg.items_per_sec = static_cast<double>(leg.items) / leg.wall;

  // Every mode and shard count must have built the identical world.
  Rng count_rng(74);
  for (int t = 1; t <= w.tenants; ++t) {
    auto count = door.Count(net->RandomNode(count_rng),
                            static_cast<uint64_t>(t), count_rng);
    CHECK_OK(count);
    digest << "estimate " << t << ' ' << StableDouble(count->estimate) << '\n';
  }
  digest << "messages " << net->stats().messages << " bytes "
         << net->stats().bytes << " storage " << net->TotalStorageBytes()
         << '\n';
  leg.digest = digest.str();
  CHECK_OK(net->AuditFull());
  return leg;
}

// ---------------------------------------------------------------------------

bool WriteJson(const std::string& path, const Workload& w,
               const std::vector<CountLeg>& counts,
               const std::vector<InsertLeg>& inserts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serving\",\n"
               "  \"equivalence\": \"every served count byte-identical to a "
               "plain-client replay of its wave log on an identically-seeded "
               "twin world; insert world digest byte-identical across modes "
               "and shard counts\",\n"
               "  \"workload\": {\"nodes\": %d, \"tenants\": %d, "
               "\"items_per_tenant\": %d, \"reqs\": %d, \"batch\": %d, "
               "\"theta\": %s, \"insert_batches\": %d},\n",
               w.nodes, w.tenants, w.items_per_tenant, w.reqs, w.batch,
               StableDouble(w.theta).c_str(), w.insert_batches);
  std::fprintf(f, "  \"counts\": [\n");
  for (size_t i = 0; i < counts.size(); ++i) {
    const CountLeg& c = counts[i];
    std::fprintf(f,
                 "    {\"transport\": \"%s\", \"mode\": \"%s\", "
                 "\"requests\": %d, \"waves\": %llu, \"coalesced\": %llu, "
                 "\"messages\": %llu, \"counts_per_sec\": %s, "
                 "\"speedup_vs_uncoalesced\": %s, \"lim_final\": %d}%s\n",
                 c.transport.c_str(), c.mode.c_str(), c.requests,
                 static_cast<unsigned long long>(c.waves),
                 static_cast<unsigned long long>(c.coalesced),
                 static_cast<unsigned long long>(c.messages),
                 StableDouble(c.per_sec).c_str(),
                 StableDouble(c.speedup).c_str(), c.lim_final,
                 i + 1 < counts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"inserts\": [\n");
  for (size_t i = 0; i < inserts.size(); ++i) {
    const InsertLeg& r = inserts[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"mode\": \"%s\", \"batches\": %d, "
                 "\"items\": %llu, \"waves\": %llu, \"items_per_sec\": %s, "
                 "\"speedup_vs_sequential\": %s}%s\n",
                 r.shards, r.mode.c_str(), r.batches,
                 static_cast<unsigned long long>(r.items),
                 static_cast<unsigned long long>(r.waves),
                 StableDouble(r.items_per_sec).c_str(),
                 StableDouble(r.speedup).c_str(),
                 i + 1 < inserts.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void Run() {
  const Workload w = ReadWorkload();
  // Read before any worker thread exists; nothing calls setenv.
  const char* json_env = std::getenv("DHS_SERVING_JSON");  // NOLINT(concurrency-mt-unsafe)
  const std::string json_path = json_env != nullptr && json_env[0] != '\0'
                                    ? json_env
                                    : "BENCH_serving.json";

  PrintHeader("P6: serving throughput (coalescing, pipelining, lim tuner)",
              "nodes=" + std::to_string(w.nodes) +
                  ", tenants=" + std::to_string(w.tenants) +
                  ", reqs=" + std::to_string(w.reqs) +
                  ", batch=" + std::to_string(w.batch) +
                  ", theta=" + FormatDouble(w.theta, 2));

  PrintRow({"transport", "mode", "waves", "messages", "counts/s", "speedup"});
  std::vector<CountLeg> counts;
  for (bool loopback : {false, true}) {
    double baseline_per_sec = 0.0;
    for (int mode = 0; mode < 3; ++mode) {
      const bool coalesce = mode > 0;
      const bool tune = mode == 2;
      counts.push_back(RunCountLeg(w, loopback, coalesce, tune));
      CountLeg& leg = counts.back();
      if (mode == 0) {
        baseline_per_sec = leg.per_sec;
      } else {
        leg.speedup = leg.per_sec / baseline_per_sec;
      }
      PrintRow({leg.transport, leg.mode, std::to_string(leg.waves),
                std::to_string(leg.messages), FormatDouble(leg.per_sec, 0),
                FormatDouble(leg.speedup, 2)});
    }
    // The acceptance ratio, gated at the default workload (knob-reduced
    // runs may not batch enough requests per flush to guarantee it).
    if (w.reqs >= 512 && w.batch >= 16) {
      CHECK(counts[counts.size() - 2].speedup >= 2.0)
          << counts[counts.size() - 2].transport
          << ": coalescing speedup below the 2x acceptance floor";
    }
  }

  std::printf("\n");
  PrintRow({"shards", "mode", "waves", "items/s", "speedup"});
  std::vector<InsertLeg> inserts;
  std::string reference_digest;
  for (int shards : {1, 4, 8}) {
    double sequential_per_sec = 0.0;
    for (bool pipeline : {false, true}) {
      inserts.push_back(RunInsertLeg(w, shards, pipeline));
      InsertLeg& leg = inserts.back();
      if (reference_digest.empty()) {
        reference_digest = leg.digest;
      } else {
        CHECK(leg.digest == reference_digest)
            << leg.mode << " at " << shards
            << " shards diverged from the sequential 1-shard world";
      }
      if (!pipeline) {
        sequential_per_sec = leg.items_per_sec;
      } else {
        leg.speedup = leg.items_per_sec / sequential_per_sec;
      }
      PrintRow({std::to_string(leg.shards), leg.mode,
                std::to_string(leg.waves), FormatDouble(leg.items_per_sec, 0),
                FormatDouble(leg.speedup, 2)});
    }
  }

  PrintPaperNote(
      "Not a paper experiment: the paper's evaluation issues one count at "
      "a time. This leg prices the serving front end (coalescing, insert "
      "pipelining, online lim tuning) that a production deployment would "
      "put in front of Sec. 3's protocols, with answers gated to be "
      "byte-identical to the unoptimized path.");

  if (WriteJson(json_path, w, counts, inserts)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
