// A1 — Ablation: the retry limit (§4.1, eq. 5/6).
//
// Sweeps lim and shows (i) the measured counting error and cost against
// the limit, and (ii) the eq. 6 theoretical hit probability for the
// interval densities of this workload. lim = 5 (paper default) should
// sit at the knee: enough for n >= m*N, wasted hops beyond.

#include <cstdio>

#include "common/check.h"
#include "bench_util.h"
#include "dhs/lim.h"

namespace dhs {
namespace bench {
namespace {

void Run() {
  const double scale = WorkloadScale();
  const int nodes = EnvInt("DHS_NODES", 1024);
  const int counts = EnvInt("DHS_COUNTS", 10);
  const int m = EnvInt("DHS_M", 512);
  PrintHeader("A1: retry-limit ablation",
              "N=" + std::to_string(nodes) + ", k=24, m=" +
                  std::to_string(m) + ", relation S, scale=" +
                  FormatDouble(scale, 3));

  RelationSpec spec = PaperRelationSpecs(scale)[2];
  const Relation relation = RelationGenerator::Generate(spec, 12);
  const double alpha = static_cast<double>(relation.NumTuples()) /
                       (static_cast<double>(m) * nodes);
  std::printf("density alpha = n/(m*N) = %.2f  (paper guarantee needs "
              ">= 1)\n", alpha);

  PrintRow({"lim", "err% sLL", "err% PCSA", "hops sLL", "hops PCSA",
            "theory hit%"});
  for (int lim : {1, 2, 3, 5, 8, 12}) {
    auto net = MakeNetwork(nodes, 1);
    DhsConfig config;
    config.k = 24;
    config.m = m;
    config.lim = lim;
    auto sll_or = DhsClient::Create(net.get(), config);
    CHECK_OK(sll_or);
    DhsClient sll = std::move(sll_or).value();
    config.estimator = DhsEstimator::kPcsa;
    auto pcsa_or = DhsClient::Create(net.get(), config);
    CHECK_OK(pcsa_or);
    DhsClient pcsa = std::move(pcsa_or).value();

    Rng rng(600 + lim);
    (void)PopulateRelation(*net, sll, relation, 1, rng);

    CountingCostSummary sll_summary;
    CountingCostSummary pcsa_summary;
    for (int t = 0; t < counts; ++t) {
      auto a = sll.Count(net->RandomNode(rng), 1, rng);
      auto b = pcsa.Count(net->RandomNode(rng), 1, rng);
      if (a.ok()) {
        sll_summary.Add(a->cost, a->estimate,
                        static_cast<double>(relation.NumTuples()));
      }
      if (b.ok()) {
        pcsa_summary.Add(b->cost, b->estimate,
                         static_cast<double>(relation.NumTuples()));
      }
    }
    // Theory: hit probability in an interval whose item/node ratio is
    // alpha (per-bitmap), using eq. 5 with N' = N/4 (a representative
    // mid-range interval).
    const uint64_t n_bins = static_cast<uint64_t>(nodes) / 4;
    const uint64_t n_items = static_cast<uint64_t>(
        alpha * static_cast<double>(n_bins));
    const double hit = HitProbability(n_bins, n_items, lim);
    PrintRow({std::to_string(lim),
              FormatDouble(100 * sll_summary.error.mean(), 1),
              FormatDouble(100 * pcsa_summary.error.mean(), 1),
              FormatDouble(sll_summary.hops.mean(), 0),
              FormatDouble(pcsa_summary.hops.mean(), 0),
              FormatDouble(100 * hit, 1)});
  }
  PrintPaperNote("lim=5 guarantees >=99% hit probability when n >= m*N; "
                 "smaller lim hurts PCSA first (leftmost-zero scan)");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
