// P4 — sharded-engine scaling (not a paper experiment).
//
// Measures the sharded execution engine (dht/shard.h) against itself as
// the shard count sweeps {1, 4, 8}, for three workloads on a Chord
// overlay:
//
//   * populate — bulk DHS insertion through the front door;
//   * mixed    — interleaved insert batches and distributed counts;
//   * churn    — joins / graceful leaves / crashes between insert and
//                count rounds (engine-mediated, so the shard plan
//                resyncs and the parallel expiry path runs).
//
// Before any timing is trusted, every multi-shard run must reproduce
// the 1-shard run's observables — estimates, message stats, storage —
// byte for byte, or the bench aborts: speedup numbers for an engine
// that changed the answers would be meaningless. 1 shard runs the
// engine inline on the calling thread, so it is the fair baseline.
//
// A final leg builds a 1,000,000-node world (BulkAddNodes), populates
// it and runs a distributed count at 8 shards — the at-scale
// completion check, timed separately for populate and count (skip with
// DHS_SHARD_MILLION=0).
//
// Results go to BENCH_shard_scaling.json (override: DHS_SHARD_JSON)
// with the host's core count embedded: on an H-core host the expected
// populate speedup at K <= H shards approaches K x minus barrier
// overhead; on a 1-core host every point stays ~1.0 by construction.
//
// Knobs: DHS_SHARD_NODES (default 4096), DHS_SHARD_ITEMS (items per
// populate leg, default 200000), DHS_SHARD_MILLION_NODES,
// DHS_SHARD_MILLION_ITEMS (defaults 1000000 / 50000).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "dhs/front_door.h"
#include "dht/chord.h"
#include "dht/shard.h"

namespace dhs {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct LegResult {
  int ops = 0;            // front-door / engine operations issued
  double wall = 0.0;      // seconds, op loop only (world build excluded)
  std::string digest;     // serialized observables, compared across K
};

/// Full-precision, locale-independent double formatting for digests.
std::string StableDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct Leg {
  std::string workload;
  int shards = 0;
  int nodes = 0;
  LegResult result;
  double speedup = 0.0;  // vs the 1-shard point of the same workload
};

std::unique_ptr<ChordNetwork> BuildWorld(int nodes, uint64_t seed) {
  OverlayConfig overlay;
  overlay.hasher = "mix";
  auto net = std::make_unique<ChordNetwork>(overlay);
  Rng rng(seed);
  std::vector<uint64_t> ids;
  ids.reserve(static_cast<size_t>(nodes));
  while (ids.size() < static_cast<size_t>(nodes)) {
    ids.push_back(rng.Next());
    if (ids.size() == static_cast<size_t>(nodes)) {
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }
  }
  CHECK_EQ(net->BulkAddNodes(std::move(ids)), static_cast<size_t>(nodes));
  return net;
}

DhsConfig BenchConfig() {
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  config.lim = 4;
  config.replication = 2;
  return config;
}

void AppendDigest(std::ostringstream& os, const DhtNetwork& net) {
  os << "stats " << net.stats().messages << ' ' << net.stats().hops << ' '
     << net.stats().bytes << " storage " << net.TotalStorageBytes() << '\n';
}

/// Bulk insertion through the front door, one batch per op.
LegResult RunPopulate(int nodes, int items, int shards) {
  auto net = BuildWorld(nodes, /*seed=*/0x5ca1e);
  ShardedNetwork engine(net.get(), shards);
  auto fd_or = DhsFrontDoor::Create(&engine, BenchConfig());
  CHECK_OK(fd_or);
  DhsFrontDoor fd = std::move(fd_or).value();
  Rng rng(0xba7c4);
  std::ostringstream digest;
  LegResult leg;
  const int batch_size = 500;
  std::vector<uint64_t> batch;
  const auto t0 = Clock::now();
  for (int done = 0; done < items; done += batch_size) {
    batch.clear();
    for (int i = 0; i < batch_size && done + i < items; ++i) {
      batch.push_back(rng.Next());
    }
    CHECK_OK(fd.InsertBatch(net->RandomNode(rng), 1, batch, rng));
    ++leg.ops;
  }
  leg.wall = std::chrono::duration<double>(Clock::now() - t0).count();
  auto count = fd.Count(net->RandomNode(rng), 1, rng);
  CHECK_OK(count);
  digest << "estimate " << StableDouble(count->estimate) << '\n';
  AppendDigest(digest, *net);
  leg.digest = digest.str();
  return leg;
}

/// Interleaved insert batches and multi-metric counts.
LegResult RunMixed(int nodes, int items, int shards) {
  auto net = BuildWorld(nodes, /*seed=*/0x301d);
  ShardedNetwork engine(net.get(), shards);
  auto fd_or = DhsFrontDoor::Create(&engine, BenchConfig());
  CHECK_OK(fd_or);
  DhsFrontDoor fd = std::move(fd_or).value();
  Rng rng(0x777);
  std::ostringstream digest;
  LegResult leg;
  const int rounds = 32;
  const int per_round = items / rounds;
  std::vector<uint64_t> batch;
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    const uint64_t metric = 1 + static_cast<uint64_t>(round % 3);
    batch.clear();
    for (int i = 0; i < per_round; ++i) batch.push_back(rng.Next());
    CHECK_OK(fd.InsertBatch(net->RandomNode(rng), metric, batch, rng));
    ++leg.ops;
    if (round % 4 == 3) {
      auto counts = fd.CountMany(net->RandomNode(rng), {1, 2, 3}, rng);
      CHECK_OK(counts);
      ++leg.ops;
      for (double estimate : counts->estimates) {
        digest << "estimate " << StableDouble(estimate) << '\n';
      }
    }
  }
  leg.wall = std::chrono::duration<double>(Clock::now() - t0).count();
  AppendDigest(digest, *net);
  leg.digest = digest.str();
  return leg;
}

/// Membership churn through the engine between insert and count rounds.
LegResult RunChurn(int nodes, int items, int shards) {
  auto net = BuildWorld(nodes, /*seed=*/0xc4u);
  ShardedNetwork engine(net.get(), shards);
  DhsConfig config = BenchConfig();
  config.ttl_ticks = 64;
  auto fd_or = DhsFrontDoor::Create(&engine, config);
  CHECK_OK(fd_or);
  DhsFrontDoor fd = std::move(fd_or).value();
  Rng rng(0x0c9);
  std::ostringstream digest;
  LegResult leg;
  const int rounds = 16;
  const int per_round = items / rounds;
  std::vector<uint64_t> batch;
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (int j = 0; j < 4; ++j) {
      if (engine.JoinNode(rng.Next()).ok()) ++leg.ops;
    }
    for (int j = 0; j < 2; ++j) {
      CHECK_OK(engine.LeaveNode(net->RandomNode(rng)));
      CHECK_OK(engine.CrashNode(net->RandomNode(rng)));
      leg.ops += 2;
    }
    batch.clear();
    for (int i = 0; i < per_round; ++i) batch.push_back(rng.Next());
    CHECK_OK(fd.InsertBatch(net->RandomNode(rng), 1, batch, rng));
    engine.AdvanceClock(8);
    auto count = fd.Count(net->RandomNode(rng), 1, rng);
    CHECK_OK(count);
    digest << "estimate " << StableDouble(count->estimate) << '\n';
    leg.ops += 3;  // insert, tick, count
  }
  leg.wall = std::chrono::duration<double>(Clock::now() - t0).count();
  AppendDigest(digest, *net);
  leg.digest = digest.str();
  return leg;
}

void Run() {
  const int nodes = EnvInt("DHS_SHARD_NODES", 4096);
  const int items = EnvInt("DHS_SHARD_ITEMS", 200000);
  const unsigned host_cores = std::thread::hardware_concurrency();

  PrintHeader("P4: sharded-engine scaling vs shard count",
              "nodes=" + std::to_string(nodes) + ", items=" +
                  std::to_string(items) + ", host cores=" +
                  std::to_string(host_cores));
  PrintRow({"workload", "shards", "ops/s", "wall s", "speedup"});

  struct Workload {
    const char* name;
    LegResult (*run)(int nodes, int items, int shards);
  };
  const Workload workloads[] = {
      {"populate", RunPopulate}, {"mixed", RunMixed}, {"churn", RunChurn}};

  std::vector<Leg> legs;
  for (const Workload& w : workloads) {
    std::string reference_digest;
    double serial_wall = 0.0;
    for (int shards : {1, 4, 8}) {
      Leg leg;
      leg.workload = w.name;
      leg.shards = shards;
      leg.nodes = nodes;
      leg.result = w.run(nodes, items, shards);
      // Determinism gate: a multi-shard run that changed any observable
      // disqualifies its own timing.
      if (shards == 1) {
        reference_digest = leg.result.digest;
        serial_wall = leg.result.wall;
      } else {
        CHECK(leg.result.digest == reference_digest)
            << w.name << " diverged at " << shards << " shards";
      }
      leg.speedup = serial_wall / leg.result.wall;
      legs.push_back(leg);
      PrintRow({w.name, std::to_string(shards),
                FormatDouble(leg.result.ops / leg.result.wall, 1),
                FormatDouble(leg.result.wall, 3),
                FormatDouble(leg.speedup, 2)});
    }
  }

  // At-scale completion check: a 1M-node world, populated and counted
  // at 8 shards. No cross-K digest here (one build of this world is
  // expensive enough); correctness at scale is audit_sim's job.
  if (EnvInt("DHS_SHARD_MILLION", 1) != 0) {
    const int mnodes = EnvInt("DHS_SHARD_MILLION_NODES", 1000000);
    const int mitems = EnvInt("DHS_SHARD_MILLION_ITEMS", 50000);
    auto t0 = Clock::now();
    auto net = BuildWorld(mnodes, /*seed=*/0x1e6);
    const double build_wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    ShardedNetwork engine(net.get(), 8);
    auto fd_or = DhsFrontDoor::Create(&engine, BenchConfig());
    CHECK_OK(fd_or);
    DhsFrontDoor fd = std::move(fd_or).value();
    Rng rng(0x1e6);
    Leg populate;
    populate.workload = "million_populate";
    populate.shards = 8;
    populate.nodes = mnodes;
    std::vector<uint64_t> batch;
    t0 = Clock::now();
    for (int done = 0; done < mitems; done += 1000) {
      batch.clear();
      for (int i = 0; i < 1000 && done + i < mitems; ++i) {
        batch.push_back(rng.Next());
      }
      CHECK_OK(fd.InsertBatch(net->RandomNode(rng), 1, batch, rng));
      ++populate.result.ops;
    }
    populate.result.wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    legs.push_back(populate);

    Leg count;
    count.workload = "million_count";
    count.shards = 8;
    count.nodes = mnodes;
    t0 = Clock::now();
    auto result = fd.Count(net->RandomNode(rng), 1, rng);
    CHECK_OK(result);
    count.result.ops = 1;
    count.result.wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    legs.push_back(count);
    PrintRow({"million(build)", "8", "-", FormatDouble(build_wall, 1), "-"});
    PrintRow({"million(pop)", "8",
              FormatDouble(populate.result.ops / populate.result.wall, 1),
              FormatDouble(populate.result.wall, 3), "-"});
    PrintRow({"million(count)", "8", "-",
              FormatDouble(count.result.wall, 3), "-"});
    // This leg checks completion at scale, not accuracy: the paper's
    // estimators operate at n >~ m*N (§5.1), i.e. ~64M items for a
    // 1M-node overlay at m=64 — far beyond a bench insert, so a heavy
    // undercount here is the expected regime, not an engine defect.
    std::printf("1M-node count completed: estimate %.0f from %d items "
                "(undercount expected: accuracy needs n >~ m*N)\n",
                result->estimate, mitems);
  }

  const char* json_env = std::getenv("DHS_SHARD_JSON");  // NOLINT(concurrency-mt-unsafe)
  const std::string json_path = json_env != nullptr && json_env[0] != '\0'
                                    ? json_env
                                    : "BENCH_shard_scaling.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"shard_scaling\",\n"
               "  \"host_cores\": %u,\n"
               "  \"determinism\": \"observable digest byte-identical at "
               "1/4/8 shards per workload\",\n"
               "  \"results\": [\n",
               host_cores);
  for (size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    // Million legs run at 8 shards only — no 1-shard baseline exists,
    // so their speedup is null rather than a misleading 0.
    char speedup[16];
    if (leg.speedup > 0.0) {
      std::snprintf(speedup, sizeof(speedup), "%.2f", leg.speedup);
    } else {
      std::snprintf(speedup, sizeof(speedup), "null");
    }
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"shards\": %d, \"nodes\": %d, "
        "\"ops\": %d, \"ops_per_second\": %.3f, \"wall_seconds\": %.3f, "
        "\"speedup_vs_1_shard\": %s}%s\n",
        leg.workload.c_str(), leg.shards, leg.nodes, leg.result.ops,
        leg.result.ops / leg.result.wall, leg.result.wall, speedup,
        i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  PrintPaperNote("speedup tracks min(shards, host cores); on a 1-core host "
                 "every point stays ~1.0 by construction");
}

}  // namespace
}  // namespace bench
}  // namespace dhs

int main() {
  dhs::bench::Run();
  return 0;
}
